//! Model memory footprints.
//!
//! Embedded deployment is bounded by storage as much as by compute ("IoT
//! devices with limited storage" — paper §1). This module accounts for the
//! bytes each learner must keep resident at inference time, which is also
//! where the §3 quantisation shines: a binary hypervector costs 1 bit per
//! component instead of 32.

use crate::algos::{DnnShape, RegHdShape};

/// Bytes of resident model state, by component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footprint {
    /// Bytes for the cluster hypervectors (or equivalent gating state).
    pub cluster_bytes: u64,
    /// Bytes for the regression model hypervectors / weights.
    pub model_bytes: u64,
    /// Bytes for the encoder parameters.
    pub encoder_bytes: u64,
}

impl Footprint {
    /// Total resident bytes.
    pub fn total(&self) -> u64 {
        self.cluster_bytes + self.model_bytes + self.encoder_bytes
    }
}

/// Inference-time footprint of a RegHD configuration.
///
/// Binary copies cost `D/8` bytes; integer copies cost `4·D`. The encoder
/// stores the projection matrix (`4·n·D`) and phases (`4·D`) — unless the
/// deployment regenerates them from the seed on the fly, which is the
/// usual HD trick; set `regenerate_encoder` for that accounting.
pub fn reghd_footprint(shape: &RegHdShape, regenerate_encoder: bool) -> Footprint {
    let d = shape.dim;
    let k = shape.models;
    let cluster_bytes = if shape.cluster_binary {
        k * d.div_ceil(8)
    } else {
        k * 4 * d
    };
    let model_bytes = if shape.model_binary {
        // Binary model + one f32 amplitude per model.
        k * d.div_ceil(8) + 4 * k
    } else {
        k * 4 * d
    };
    let encoder_bytes = if regenerate_encoder {
        8 // just the seed
    } else {
        4 * shape.features * d + 4 * d
    };
    Footprint {
        cluster_bytes,
        model_bytes,
        encoder_bytes,
    }
}

/// Inference-time footprint of a dense DNN (f32 weights + biases).
pub fn dnn_footprint(shape: &DnnShape) -> Footprint {
    let params: u64 = shape.layers.windows(2).map(|w| w[0] * w[1] + w[1]).sum();
    Footprint {
        cluster_bytes: 0,
        model_bytes: 4 * params,
        encoder_bytes: 0,
    }
}

/// Inference-time footprint of Baseline-HD: one integer class hypervector
/// per output bin plus the encoder.
pub fn baseline_hd_footprint(
    features: u64,
    dim: u64,
    bins: u64,
    regenerate_encoder: bool,
) -> Footprint {
    Footprint {
        cluster_bytes: 0,
        model_bytes: bins * 4 * dim,
        encoder_bytes: if regenerate_encoder {
            8
        } else {
            4 * features * dim + 4 * dim
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(cluster_binary: bool, model_binary: bool) -> RegHdShape {
        RegHdShape {
            dim: 4096,
            models: 8,
            features: 10,
            cluster_binary,
            query_binary: model_binary,
            model_binary,
        }
    }

    #[test]
    fn binary_clusters_are_32x_smaller() {
        let full = reghd_footprint(&shape(false, false), true);
        let quant = reghd_footprint(&shape(true, false), true);
        assert_eq!(full.cluster_bytes, 32 * quant.cluster_bytes);
    }

    #[test]
    fn binary_models_shrink_accordingly() {
        let full = reghd_footprint(&shape(false, false), true);
        let quant = reghd_footprint(&shape(false, true), true);
        // 1 bit vs 32 bits, plus the small amplitude overhead.
        assert!(quant.model_bytes < full.model_bytes / 30);
    }

    #[test]
    fn seed_regeneration_removes_encoder_storage() {
        let stored = reghd_footprint(&shape(false, false), false);
        let regen = reghd_footprint(&shape(false, false), true);
        assert!(stored.encoder_bytes > 100_000);
        assert_eq!(regen.encoder_bytes, 8);
        assert!(regen.total() < stored.total());
    }

    #[test]
    fn quantised_reghd_fits_iot_budgets() {
        // Fully binary RegHD-8 at D=4096 with seed-regenerated encoder:
        // ~8 KiB — trivially within a microcontroller's SRAM.
        let fp = reghd_footprint(&shape(true, true), true);
        assert!(fp.total() < 16 * 1024, "total = {}", fp.total());
    }

    #[test]
    fn dnn_footprint_counts_params() {
        let fp = dnn_footprint(&DnnShape {
            layers: vec![10, 512, 512, 1],
        });
        let params = 10 * 512 + 512 + 512 * 512 + 512 + 512 + 1;
        assert_eq!(fp.model_bytes, 4 * params);
        // The representative DNN outweighs even full-precision RegHD-8.
        let reghd = reghd_footprint(&shape(false, false), true);
        assert!(fp.total() > reghd.total());
    }

    #[test]
    fn baseline_hd_grows_with_bins() {
        let small = baseline_hd_footprint(10, 4096, 16, true);
        let big = baseline_hd_footprint(10, 4096, 256, true);
        assert_eq!(big.model_bytes, 16 * small.model_bytes);
    }
}
