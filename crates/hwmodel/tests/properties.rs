//! Property-based tests for the hardware cost model: monotonicity and
//! scaling laws that must hold for any shape.

use hwmodel::algos::{
    dnn_infer_cost, dnn_train_epoch_cost, reghd_infer_cost, reghd_train_epoch_cost, DnnShape,
    RegHdShape,
};
use hwmodel::memory::{dnn_footprint, reghd_footprint};
use hwmodel::{DeviceProfile, OpCount};
use proptest::prelude::*;

fn shape_strategy() -> impl Strategy<Value = RegHdShape> {
    (
        64u64..8192,
        1u64..64,
        1u64..32,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(dim, models, features, cb, qb, mb)| RegHdShape {
            dim,
            models,
            features,
            cluster_binary: cb,
            query_binary: qb,
            model_binary: mb,
        })
}

proptest! {
    #[test]
    fn time_and_energy_nonnegative(shape in shape_strategy()) {
        for dev in [DeviceProfile::fpga_kintex7(), DeviceProfile::embedded_cpu()] {
            let est = dev.estimate(&reghd_infer_cost(&shape));
            prop_assert!(est.time_s >= 0.0);
            prop_assert!(est.energy_j >= 0.0);
            prop_assert!(est.time_s.is_finite() && est.energy_j.is_finite());
        }
    }

    #[test]
    fn inference_cost_monotone_in_models(mut shape in shape_strategy()) {
        let dev = DeviceProfile::fpga_kintex7();
        shape.models = 2;
        let t2 = dev.time_s(&reghd_infer_cost(&shape));
        shape.models = 16;
        let t16 = dev.time_s(&reghd_infer_cost(&shape));
        prop_assert!(t16 > t2);
    }

    #[test]
    fn inference_cost_monotone_in_dim(mut shape in shape_strategy()) {
        let dev = DeviceProfile::fpga_kintex7();
        shape.dim = 512;
        let lo = dev.time_s(&reghd_infer_cost(&shape));
        shape.dim = 4096;
        let hi = dev.time_s(&reghd_infer_cost(&shape));
        prop_assert!(hi > lo);
    }

    #[test]
    fn quantisation_never_increases_inference_cost(mut shape in shape_strategy()) {
        let dev = DeviceProfile::fpga_kintex7();
        shape.cluster_binary = false;
        shape.query_binary = false;
        shape.model_binary = false;
        let full = dev.time_s(&reghd_infer_cost(&shape));
        shape.cluster_binary = true;
        shape.query_binary = true;
        shape.model_binary = true;
        let quant = dev.time_s(&reghd_infer_cost(&shape));
        prop_assert!(quant <= full, "quantised {} vs full {}", quant, full);
    }

    #[test]
    fn train_epoch_scales_linearly_in_samples(shape in shape_strategy(), n in 1u64..500) {
        let a = reghd_train_epoch_cost(&shape, n);
        let b = reghd_train_epoch_cost(&shape, 2 * n);
        prop_assert_eq!(b.total_arith(), 2 * a.total_arith());
        prop_assert_eq!(b.mem_bytes, 2 * a.mem_bytes);
    }

    #[test]
    fn opcount_algebra(a_mul in 0u64..1000, a_add in 0u64..1000, k in 0u64..100) {
        let a = OpCount { f32_mul: a_mul, f32_add: a_add, ..OpCount::zero() };
        prop_assert_eq!((a + a).f32_mul, 2 * a_mul);
        prop_assert_eq!((a * k).f32_add, a_add * k);
        // Distributivity of scaling over addition.
        prop_assert_eq!((a + a) * k, a * k + a * k);
    }

    #[test]
    fn dnn_train_more_expensive_than_infer(widths in prop::collection::vec(1u64..256, 2..5)) {
        let shape = DnnShape { layers: widths };
        let dev = DeviceProfile::embedded_cpu();
        let infer = dev.time_s(&dnn_infer_cost(&shape));
        let train = dev.time_s(&dnn_train_epoch_cost(&shape, 1));
        prop_assert!(train >= infer);
    }

    #[test]
    fn binary_footprint_never_larger(shape in shape_strategy()) {
        let mut full = shape;
        full.cluster_binary = false;
        full.model_binary = false;
        let mut quant = shape;
        quant.cluster_binary = true;
        quant.model_binary = true;
        let f_full = reghd_footprint(&full, true);
        let f_quant = reghd_footprint(&quant, true);
        prop_assert!(f_quant.total() <= f_full.total());
    }

    #[test]
    fn footprint_scales_with_models(mut shape in shape_strategy()) {
        shape.models = 4;
        let a = reghd_footprint(&shape, true);
        shape.models = 8;
        let b = reghd_footprint(&shape, true);
        prop_assert!(b.cluster_bytes >= a.cluster_bytes);
        prop_assert!(b.model_bytes >= a.model_bytes);
    }

    #[test]
    fn dnn_footprint_positive(widths in prop::collection::vec(1u64..128, 2..4)) {
        let fp = dnn_footprint(&DnnShape { layers: widths });
        prop_assert!(fp.model_bytes > 0);
    }
}
