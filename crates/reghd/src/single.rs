//! Single-model hyperdimensional regression (paper §2.3).
//!
//! One model hypervector `M`, initialised to zero, trained with the
//! perceptron-style delta rule of Eq. 2:
//!
//! ```text
//! ŷ = M · S
//! M ← M + α (y − ŷ) S
//! ```
//!
//! iterated over the training data until the model stabilises. This is the
//! simplest RegHD variant; its capacity limit on multi-regime tasks (§2.3
//! "hypervector capacity") is what motivates the multi-model design in
//! [`crate::model`].

use crate::config::RegHdConfig;
use crate::traits::{FitReport, Regressor};
use encoding::Encoder;
use hdc::rng::HdRng;
use hdc::RealHv;

/// Single-hypervector RegHD regressor (Eq. 2).
///
/// # Examples
///
/// ```
/// use reghd::{SingleHdRegressor, Regressor, config::RegHdConfig};
/// use encoding::NonlinearEncoder;
///
/// // y = x0 + x1 on a toy grid.
/// let xs: Vec<Vec<f32>> = (0..50)
///     .map(|i| vec![(i % 7) as f32 / 7.0, (i % 5) as f32 / 5.0])
///     .collect();
/// let ys: Vec<f32> = xs.iter().map(|x| x[0] + x[1]).collect();
///
/// let cfg = RegHdConfig::builder().dim(1024).max_epochs(30).build();
/// let enc = NonlinearEncoder::new(2, 1024, 1);
/// let mut model = SingleHdRegressor::new(cfg, Box::new(enc));
/// let report = model.fit(&xs, &ys);
/// assert!(report.final_mse().unwrap() < 0.05);
/// ```
pub struct SingleHdRegressor {
    config: RegHdConfig,
    encoder: Box<dyn Encoder>,
    model: RealHv,
    intercept: f32,
    /// Training-set mean encoding, subtracted from every encoding when
    /// `config.center_encodings` is on (see that field's docs).
    center: Option<RealHv>,
    trained: bool,
}

impl std::fmt::Debug for SingleHdRegressor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SingleHdRegressor")
            .field("dim", &self.config.dim)
            .field("trained", &self.trained)
            .finish()
    }
}

impl SingleHdRegressor {
    /// Creates an untrained single-model regressor.
    ///
    /// # Panics
    ///
    /// Panics if `encoder.dim() != config.dim` or the config is invalid.
    pub fn new(config: RegHdConfig, encoder: Box<dyn Encoder>) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid RegHdConfig: {e}"));
        assert_eq!(
            encoder.dim(),
            config.dim,
            "encoder dim {} does not match config dim {}",
            encoder.dim(),
            config.dim
        );
        let dim = config.dim;
        Self {
            config,
            encoder,
            model: RealHv::zeros(dim),
            intercept: 0.0,
            center: None,
            trained: false,
        }
    }

    /// The model hypervector `M` (all zeros before training).
    pub fn model(&self) -> &RealHv {
        &self.model
    }

    /// The learned intercept (0 when `config.intercept` is off).
    pub fn intercept(&self) -> f32 {
        self.intercept
    }

    /// The configuration this regressor was built with.
    pub fn config(&self) -> &RegHdConfig {
        &self.config
    }

    fn encode(&self, x: &[f32]) -> RealHv {
        let mut s = self.encoder.encode(x);
        if let Some(center) = &self.center {
            s.add_scaled(center, -1.0);
        }
        if self.config.normalize_encodings {
            s.normalize();
        }
        s
    }
}

impl Regressor for SingleHdRegressor {
    fn fit(&mut self, features: &[Vec<f32>], targets: &[f32]) -> FitReport {
        assert_eq!(
            features.len(),
            targets.len(),
            "features and targets must have the same length"
        );
        assert!(!features.is_empty(), "cannot fit on empty data");

        // Reset state so repeated fits are independent.
        self.model = RealHv::zeros(self.config.dim);
        self.intercept = 0.0;
        self.center = None;

        // Fit the encoding centre on this training set (see
        // `RegHdConfig::center_encodings`), then encode once; epochs then
        // cost only dot products and updates.
        let mut encoded: Vec<RealHv> = features.iter().map(|x| self.encoder.encode(x)).collect();
        if self.config.center_encodings {
            let mut mean = RealHv::zeros(self.config.dim);
            for s in &encoded {
                mean.add_scaled(s, 1.0 / encoded.len() as f32);
            }
            for s in &mut encoded {
                s.add_scaled(&mean, -1.0);
            }
            self.center = Some(mean);
        }
        if self.config.normalize_encodings {
            for s in &mut encoded {
                s.normalize();
            }
        }

        let mut rng = HdRng::seed_from(self.config.seed ^ 0x51_4e_67_1e);
        let mut order: Vec<usize> = (0..features.len()).collect();
        let mut history = Vec::new();
        let mut calm_epochs = 0usize;
        let mut converged = false;

        for _epoch in 0..self.config.max_epochs {
            // Fresh shuffle each epoch avoids order bias (§2.3 notes that
            // single-pass training lets late inputs dominate).
            for i in (1..order.len()).rev() {
                let j = rng.next_below(i + 1);
                order.swap(i, j);
            }
            let mut sq_err = 0.0f64;
            for &i in &order {
                let s = &encoded[i];
                let pred = self.model.dot(s) + self.intercept;
                let err = targets[i] - pred;
                sq_err += (err as f64) * (err as f64);
                self.model.add_scaled(s, self.config.learning_rate * err);
                if self.config.intercept {
                    self.intercept += self.config.learning_rate * 0.1 * err;
                }
            }
            let epoch_mse = (sq_err / order.len() as f64) as f32;
            // Stopping rule: "minor changes during a few consecutive
            // iterations" — an epoch resets the patience counter only when
            // it improves on the best MSE so far by more than the
            // tolerance, so oscillation around a floor counts as calm.
            match history.iter().copied().fold(f32::INFINITY, f32::min) {
                best if epoch_mse < best * (1.0 - self.config.convergence_tol) => {
                    calm_epochs = 0;
                }
                best if best.is_finite() => calm_epochs += 1,
                _ => {}
            }
            history.push(epoch_mse);
            if history.len() >= self.config.min_epochs && calm_epochs >= self.config.patience {
                converged = true;
                break;
            }
        }

        self.trained = true;
        FitReport {
            epochs: history.len(),
            train_mse_history: history,
            converged,
        }
    }

    fn predict_one(&self, x: &[f32]) -> f32 {
        let s = self.encode(x);
        self.model.dot(&s) + self.intercept
    }

    fn name(&self) -> String {
        "RegHD-single".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RegHdConfig;
    use encoding::NonlinearEncoder;

    fn toy_linear(n: usize) -> (Vec<Vec<f32>>, Vec<f32>) {
        let mut rng = HdRng::seed_from(7);
        let xs: Vec<Vec<f32>> = (0..n)
            .map(|_| vec![rng.next_f32() * 2.0 - 1.0, rng.next_f32() * 2.0 - 1.0])
            .collect();
        let ys = xs.iter().map(|x| 2.0 * x[0] - x[1] + 0.5).collect();
        (xs, ys)
    }

    fn make(dim: usize, seed: u64) -> SingleHdRegressor {
        let cfg = RegHdConfig::builder()
            .dim(dim)
            .max_epochs(40)
            .seed(seed)
            .build();
        let enc = NonlinearEncoder::new(2, dim, seed);
        SingleHdRegressor::new(cfg, Box::new(enc))
    }

    #[test]
    fn learns_linear_function() {
        let (xs, ys) = toy_linear(200);
        let mut m = make(2048, 1);
        let report = m.fit(&xs, &ys);
        assert!(
            report.final_mse().unwrap() < 0.02,
            "final mse = {:?}",
            report.final_mse()
        );
    }

    #[test]
    fn learns_nonlinear_function() {
        // The encoder's nonlinearity lets the *linear* HD learner fit a
        // nonlinear target — the core claim of §2.2.
        let mut rng = HdRng::seed_from(3);
        let xs: Vec<Vec<f32>> = (0..300)
            .map(|_| vec![rng.next_f32() * 2.0 - 1.0, rng.next_f32() * 2.0 - 1.0])
            .collect();
        let ys: Vec<f32> = xs
            .iter()
            .map(|x| (3.0 * x[0]).sin() + x[1] * x[1])
            .collect();
        let mut m = make(4096, 5);
        let report = m.fit(&xs, &ys);
        let var = {
            let mean = ys.iter().sum::<f32>() / ys.len() as f32;
            ys.iter().map(|&y| (y - mean) * (y - mean)).sum::<f32>() / ys.len() as f32
        };
        let mse = report.final_mse().unwrap();
        assert!(
            mse < 0.2 * var,
            "mse {mse} should be well under variance {var}"
        );
    }

    #[test]
    fn iterative_training_improves_mse() {
        // Figure 3a's qualitative content: MSE decreases over iterations.
        let (xs, ys) = toy_linear(150);
        let mut m = make(1024, 2);
        let report = m.fit(&xs, &ys);
        let first = report.train_mse_history[0];
        let last = *report.train_mse_history.last().unwrap();
        assert!(
            last < 0.5 * first,
            "training should improve: first={first} last={last}"
        );
    }

    #[test]
    fn convergence_stops_early() {
        let (xs, ys) = toy_linear(100);
        let cfg = RegHdConfig::builder()
            .dim(1024)
            .max_epochs(200)
            .convergence_tol(0.05)
            .patience(2)
            .build();
        let enc = NonlinearEncoder::new(2, 1024, 0);
        let mut m = SingleHdRegressor::new(cfg, Box::new(enc));
        let report = m.fit(&xs, &ys);
        assert!(report.converged);
        assert!(report.epochs < 200);
    }

    #[test]
    fn refit_resets_state() {
        let (xs, ys) = toy_linear(100);
        let mut m = make(1024, 4);
        m.fit(&xs, &ys);
        let pred_a = m.predict_one(&xs[0]);
        // Refit on shifted targets: predictions must track the new data,
        // not accumulate on top of the old model.
        let ys_shift: Vec<f32> = ys.iter().map(|&y| y + 100.0).collect();
        m.fit(&xs, &ys_shift);
        let pred_b = m.predict_one(&xs[0]);
        assert!(
            (pred_b - pred_a - 100.0).abs() < 5.0,
            "pred_a={pred_a} pred_b={pred_b}"
        );
    }

    #[test]
    fn untrained_model_predicts_zero() {
        let m = make(512, 0);
        assert_eq!(m.predict_one(&[0.3, -0.3]), 0.0);
    }

    #[test]
    fn batch_predict_matches_single() {
        let (xs, ys) = toy_linear(80);
        let mut m = make(1024, 6);
        m.fit(&xs, &ys);
        let batch = m.predict(&xs[..5]);
        for (i, &b) in batch.iter().enumerate() {
            assert_eq!(b, m.predict_one(&xs[i]));
        }
    }

    #[test]
    #[should_panic(expected = "does not match config dim")]
    fn encoder_dim_mismatch_panics() {
        let cfg = RegHdConfig::builder().dim(1024).build();
        let enc = NonlinearEncoder::new(2, 512, 0);
        SingleHdRegressor::new(cfg, Box::new(enc));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn fit_empty_panics() {
        make(256, 0).fit(&[], &[]);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn fit_mismatched_panics() {
        make(256, 0).fit(&[vec![0.0, 0.0]], &[1.0, 2.0]);
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = toy_linear(60);
        let mut a = make(512, 9);
        let mut b = make(512, 9);
        a.fit(&xs, &ys);
        b.fit(&xs, &ys);
        assert_eq!(a.predict_one(&xs[0]), b.predict_one(&xs[0]));
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(make(256, 0).name(), "RegHD-single");
    }
}
