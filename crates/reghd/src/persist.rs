//! Model persistence: save a trained [`RegHdRegressor`] to a compact
//! binary file and load it back, bit-exactly.
//!
//! Because every encoder in this workspace is deterministic given its
//! [`EncoderSpec`], only the spec is stored — a few integers — plus the
//! learned state: integer cluster and model hypervectors, the encoding
//! centre, and the intercept. Binary copies and amplitudes are re-derived
//! on load, so a round-tripped model predicts **identically** to the
//! original in every quantisation mode.
//!
//! Format (little-endian): magic `RGHD`, version, config block, encoder
//! spec block, learned-state block.
//!
//! ```
//! use reghd::{RegHdRegressor, Regressor, config::RegHdConfig, persist};
//! use encoding::EncoderSpec;
//!
//! let spec = EncoderSpec::Nonlinear { input_dim: 2, dim: 256, seed: 1 };
//! let cfg = RegHdConfig::builder().dim(256).models(2).max_epochs(5).build();
//! let mut model = RegHdRegressor::new(cfg.clone(), spec.build());
//! let xs = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![0.5, -0.5], vec![-1.0, 0.3]];
//! let ys = vec![0.0, 2.0, 0.5, -0.7];
//! model.fit(&xs, &ys);
//!
//! let mut buf = Vec::new();
//! persist::save(&model, &spec, &mut buf)?;
//! let loaded = persist::load(&mut buf.as_slice())?;
//! assert_eq!(loaded.predict_one(&[0.5, -0.5]), model.predict_one(&[0.5, -0.5]));
//! # Ok::<(), reghd::persist::PersistError>(())
//! ```

use crate::config::{ClusterMode, PredictionMode, RegHdConfig, UpdateRule};
use crate::model::RegHdRegressor;
use crate::online::OnlineRegHd;
use encoding::EncoderSpec;
use hdc::RealHv;
use std::error::Error;
use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"RGHD";
const VERSION: u16 = 1;
/// Version 2 adds a model-kind byte after the version so streaming
/// ([`OnlineRegHd`]) state can share the format. Batch models keep writing
/// version 1 (bit-identical to earlier releases); [`load`] accepts both.
const VERSION_KINDED: u16 = 2;
const KIND_BATCH: u8 = 0;
const KIND_ONLINE: u8 = 1;

/// Error raised by save/load.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream is not a RegHD model file, or is from an unsupported
    /// version, or is structurally inconsistent.
    Format(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Format(m) => write!(f, "malformed model file: {m}"),
        }
    }
}

impl Error for PersistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn w_u8<W: Write>(w: &mut W, v: u8) -> Result<(), PersistError> {
    w.write_all(&[v])?;
    Ok(())
}

fn w_u16<W: Write>(w: &mut W, v: u16) -> Result<(), PersistError> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn w_u64<W: Write>(w: &mut W, v: u64) -> Result<(), PersistError> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn w_f32<W: Write>(w: &mut W, v: f32) -> Result<(), PersistError> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn w_f64<W: Write>(w: &mut W, v: f64) -> Result<(), PersistError> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn r_u8<R: Read>(r: &mut R) -> Result<u8, PersistError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn r_u16<R: Read>(r: &mut R) -> Result<u16, PersistError> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn r_u64<R: Read>(r: &mut R) -> Result<u64, PersistError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn r_f32<R: Read>(r: &mut R) -> Result<f32, PersistError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

fn r_f64<R: Read>(r: &mut R) -> Result<f64, PersistError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn r_usize<R: Read>(r: &mut R, what: &str) -> Result<usize, PersistError> {
    let v = r_u64(r)?;
    usize::try_from(v).map_err(|_| PersistError::Format(format!("{what} out of range: {v}")))
}

fn w_hv<W: Write>(w: &mut W, hv: &RealHv) -> Result<(), PersistError> {
    w_u64(w, hv.dim() as u64)?;
    for &v in hv.as_slice() {
        w_f32(w, v)?;
    }
    Ok(())
}

fn r_hv<R: Read>(r: &mut R, expect_dim: usize) -> Result<RealHv, PersistError> {
    let dim = r_usize(r, "hypervector dim")?;
    if dim != expect_dim {
        return Err(PersistError::Format(format!(
            "hypervector dim {dim} does not match config dim {expect_dim}"
        )));
    }
    if dim > (1 << 28) {
        return Err(PersistError::Format(format!("implausible dim {dim}")));
    }
    let mut data = Vec::with_capacity(dim);
    for _ in 0..dim {
        data.push(r_f32(r)?);
    }
    Ok(RealHv::from_vec(data))
}

fn cluster_mode_tag(m: ClusterMode) -> u8 {
    match m {
        ClusterMode::Integer => 0,
        ClusterMode::FrameworkBinary => 1,
        ClusterMode::NaiveBinary => 2,
    }
}

fn cluster_mode_from(t: u8) -> Result<ClusterMode, PersistError> {
    Ok(match t {
        0 => ClusterMode::Integer,
        1 => ClusterMode::FrameworkBinary,
        2 => ClusterMode::NaiveBinary,
        _ => return Err(PersistError::Format(format!("bad cluster mode tag {t}"))),
    })
}

fn pred_mode_tag(m: PredictionMode) -> u8 {
    match m {
        PredictionMode::Full => 0,
        PredictionMode::BinaryQuery => 1,
        PredictionMode::BinaryModel => 2,
        PredictionMode::BinaryBoth => 3,
    }
}

fn pred_mode_from(t: u8) -> Result<PredictionMode, PersistError> {
    Ok(match t {
        0 => PredictionMode::Full,
        1 => PredictionMode::BinaryQuery,
        2 => PredictionMode::BinaryModel,
        3 => PredictionMode::BinaryBoth,
        _ => return Err(PersistError::Format(format!("bad prediction mode tag {t}"))),
    })
}

fn update_rule_tag(r: UpdateRule) -> u8 {
    match r {
        UpdateRule::ConfidenceWeighted => 0,
        UpdateRule::SharedError => 1,
        UpdateRule::ArgmaxOnly => 2,
    }
}

fn update_rule_from(t: u8) -> Result<UpdateRule, PersistError> {
    Ok(match t {
        0 => UpdateRule::ConfidenceWeighted,
        1 => UpdateRule::SharedError,
        2 => UpdateRule::ArgmaxOnly,
        _ => return Err(PersistError::Format(format!("bad update rule tag {t}"))),
    })
}

fn write_spec<W: Write>(w: &mut W, spec: &EncoderSpec) -> Result<(), PersistError> {
    w_u8(w, spec.kind_tag())?;
    match *spec {
        EncoderSpec::Nonlinear {
            input_dim,
            dim,
            seed,
        }
        | EncoderSpec::Projection {
            input_dim,
            dim,
            seed,
        } => {
            w_u64(w, input_dim as u64)?;
            w_u64(w, dim as u64)?;
            w_u64(w, seed)?;
        }
        EncoderSpec::Rff {
            input_dim,
            dim,
            bandwidth,
            seed,
        } => {
            w_u64(w, input_dim as u64)?;
            w_u64(w, dim as u64)?;
            w_f32(w, bandwidth)?;
            w_u64(w, seed)?;
        }
        EncoderSpec::IdLevel {
            input_dim,
            dim,
            levels,
            range,
            seed,
        } => {
            w_u64(w, input_dim as u64)?;
            w_u64(w, dim as u64)?;
            w_u64(w, levels as u64)?;
            w_f32(w, range.0)?;
            w_f32(w, range.1)?;
            w_u64(w, seed)?;
        }
    }
    Ok(())
}

fn read_spec<R: Read>(r: &mut R) -> Result<EncoderSpec, PersistError> {
    let tag = r_u8(r)?;
    Ok(match tag {
        0 => EncoderSpec::Nonlinear {
            input_dim: r_usize(r, "input_dim")?,
            dim: r_usize(r, "dim")?,
            seed: r_u64(r)?,
        },
        1 => EncoderSpec::Rff {
            input_dim: r_usize(r, "input_dim")?,
            dim: r_usize(r, "dim")?,
            bandwidth: r_f32(r)?,
            seed: r_u64(r)?,
        },
        2 => EncoderSpec::Projection {
            input_dim: r_usize(r, "input_dim")?,
            dim: r_usize(r, "dim")?,
            seed: r_u64(r)?,
        },
        3 => EncoderSpec::IdLevel {
            input_dim: r_usize(r, "input_dim")?,
            dim: r_usize(r, "dim")?,
            levels: r_usize(r, "levels")?,
            range: (r_f32(r)?, r_f32(r)?),
            seed: r_u64(r)?,
        },
        _ => return Err(PersistError::Format(format!("bad encoder tag {tag}"))),
    })
}

fn write_config<W: Write>(w: &mut W, cfg: &RegHdConfig) -> Result<(), PersistError> {
    w_u64(w, cfg.dim as u64)?;
    w_u64(w, cfg.models as u64)?;
    w_f32(w, cfg.learning_rate)?;
    w_u64(w, cfg.max_epochs as u64)?;
    w_u64(w, cfg.min_epochs as u64)?;
    w_f32(w, cfg.convergence_tol)?;
    w_u64(w, cfg.patience as u64)?;
    w_f32(w, cfg.softmax_beta)?;
    w_u64(w, cfg.quantize_batch as u64)?;
    w_u8(w, cluster_mode_tag(cfg.cluster_mode))?;
    w_u8(w, pred_mode_tag(cfg.prediction_mode))?;
    w_u8(w, update_rule_tag(cfg.update_rule))?;
    w_u8(w, u8::from(cfg.normalize_encodings))?;
    w_u8(w, u8::from(cfg.center_encodings))?;
    w_u8(w, u8::from(cfg.intercept))?;
    w_u64(w, cfg.seed)?;
    Ok(())
}

fn read_config<R: Read>(r: &mut R) -> Result<RegHdConfig, PersistError> {
    let cfg = RegHdConfig {
        dim: r_usize(r, "dim")?,
        models: r_usize(r, "models")?,
        learning_rate: r_f32(r)?,
        max_epochs: r_usize(r, "max_epochs")?,
        min_epochs: r_usize(r, "min_epochs")?,
        convergence_tol: r_f32(r)?,
        patience: r_usize(r, "patience")?,
        softmax_beta: r_f32(r)?,
        quantize_batch: r_usize(r, "quantize_batch")?,
        cluster_mode: cluster_mode_from(r_u8(r)?)?,
        prediction_mode: pred_mode_from(r_u8(r)?)?,
        update_rule: update_rule_from(r_u8(r)?)?,
        normalize_encodings: r_u8(r)? != 0,
        center_encodings: r_u8(r)? != 0,
        intercept: r_u8(r)? != 0,
        seed: r_u64(r)?,
    };
    cfg.validate().map_err(PersistError::Format)?;
    Ok(cfg)
}

fn read_spec_checked<R: Read>(r: &mut R, dim: usize) -> Result<EncoderSpec, PersistError> {
    let spec = read_spec(r)?;
    if spec.dim() != dim {
        return Err(PersistError::Format(format!(
            "encoder dim {} does not match config dim {dim}",
            spec.dim()
        )));
    }
    Ok(spec)
}

/// Serialises a trained model to any writer. `spec` must describe the
/// encoder the model was built with (the library cannot recover it from
/// the trait object).
///
/// # Errors
///
/// Returns [`PersistError::Io`] on write failure.
pub fn save<W: Write>(
    model: &RegHdRegressor,
    spec: &EncoderSpec,
    w: &mut W,
) -> Result<(), PersistError> {
    let cfg = model.config();
    w.write_all(MAGIC)?;
    w_u16(w, VERSION)?;
    write_config(w, cfg)?;
    write_spec(w, spec)?;
    // Learned state.
    w_f32(w, model.intercept())?;
    match model.center() {
        Some(c) => {
            w_u8(w, 1)?;
            w_hv(w, c)?;
        }
        None => w_u8(w, 0)?,
    }
    for c in model.clusters().integer_clusters() {
        w_hv(w, c)?;
    }
    for m in model.models().integer_models() {
        w_hv(w, m)?;
    }
    Ok(())
}

/// Deserialises a model from any reader.
///
/// # Errors
///
/// Returns [`PersistError::Format`] when the stream is not a valid model
/// file (wrong magic/version, inconsistent shapes, bad enum tags) and
/// [`PersistError::Io`] on read failure.
pub fn load<R: Read>(r: &mut R) -> Result<RegHdRegressor, PersistError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PersistError::Format("bad magic".to_string()));
    }
    let version = r_u16(r)?;
    match version {
        VERSION => {}
        VERSION_KINDED => {
            let kind = r_u8(r)?;
            if kind == KIND_ONLINE {
                return Err(PersistError::Format(
                    "this file holds an online (streaming) model: use load_online".to_string(),
                ));
            }
            if kind != KIND_BATCH {
                return Err(PersistError::Format(format!("bad model kind {kind}")));
            }
        }
        _ => {
            return Err(PersistError::Format(format!(
                "unsupported version {version} (expected {VERSION} or {VERSION_KINDED})"
            )));
        }
    }
    let cfg = read_config(r)?;
    let dim = cfg.dim;
    let models = cfg.models;
    let spec = read_spec_checked(r, dim)?;

    let intercept = r_f32(r)?;
    let center = if r_u8(r)? != 0 {
        Some(r_hv(r, dim)?)
    } else {
        None
    };
    let mut clusters = Vec::with_capacity(models);
    for _ in 0..models {
        clusters.push(r_hv(r, dim)?);
    }
    let mut model_hvs = Vec::with_capacity(models);
    for _ in 0..models {
        model_hvs.push(r_hv(r, dim)?);
    }
    Ok(RegHdRegressor::from_parts(
        cfg,
        spec.build(),
        clusters,
        model_hvs,
        center,
        intercept,
    ))
}

/// Saves a model to a file path. See [`save`].
///
/// # Errors
///
/// Returns [`PersistError::Io`] on filesystem failure.
pub fn save_to_file<P: AsRef<Path>>(
    model: &RegHdRegressor,
    spec: &EncoderSpec,
    path: P,
) -> Result<(), PersistError> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    save(model, spec, &mut f)
}

/// Loads a model from a file path. See [`load`].
///
/// # Errors
///
/// Returns [`PersistError`] on filesystem failure or malformed content.
pub fn load_from_file<P: AsRef<Path>>(path: P) -> Result<RegHdRegressor, PersistError> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    load(&mut f)
}

/// Serialises a streaming [`OnlineRegHd`] model to any writer.
///
/// Beyond the batch format this stores the training cursor — samples seen,
/// the prequential EWMA, and per-cluster error estimates — so a resumed
/// trainer continues the exact statistic stream it left off. The binary
/// bank copies are *not* stored (they are re-derived on load), so for a
/// bit-exact round-trip in the binary prediction/cluster modes call
/// [`OnlineRegHd::quantize_now`] before saving; the default
/// `Integer`/`Full` modes are always bit-exact.
///
/// # Errors
///
/// Returns [`PersistError::Io`] on write failure.
pub fn save_online<W: Write>(
    model: &OnlineRegHd,
    spec: &EncoderSpec,
    w: &mut W,
) -> Result<(), PersistError> {
    let cfg = model.config();
    w.write_all(MAGIC)?;
    w_u16(w, VERSION_KINDED)?;
    w_u8(w, KIND_ONLINE)?;
    write_config(w, cfg)?;
    write_spec(w, spec)?;
    // Learned state + training cursor.
    w_f32(w, model.intercept())?;
    w_u64(w, model.samples_seen())?;
    w_f64(w, model.ewma_sq_err_raw())?;
    for &e in model.cluster_errors() {
        w_f64(w, e)?;
    }
    for c in model.clusters().integer_clusters() {
        w_hv(w, c)?;
    }
    for m in model.models().integer_models() {
        w_hv(w, m)?;
    }
    Ok(())
}

/// Deserialises a streaming model saved by [`save_online`].
///
/// # Errors
///
/// Returns [`PersistError::Format`] when the stream is not a valid online
/// model file (including batch files, which must go through [`load`]) and
/// [`PersistError::Io`] on read failure.
pub fn load_online<R: Read>(r: &mut R) -> Result<OnlineRegHd, PersistError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PersistError::Format("bad magic".to_string()));
    }
    let version = r_u16(r)?;
    if version == VERSION {
        return Err(PersistError::Format(
            "this file holds a batch model: use load".to_string(),
        ));
    }
    if version != VERSION_KINDED {
        return Err(PersistError::Format(format!(
            "unsupported version {version} (expected {VERSION_KINDED})"
        )));
    }
    let kind = r_u8(r)?;
    if kind != KIND_ONLINE {
        return Err(PersistError::Format(
            "this file holds a batch model: use load".to_string(),
        ));
    }
    let cfg = read_config(r)?;
    let dim = cfg.dim;
    let models = cfg.models;
    let spec = read_spec_checked(r, dim)?;

    let intercept = r_f32(r)?;
    let samples_seen = r_u64(r)?;
    let ewma_sq_err = r_f64(r)?;
    let mut cluster_err = Vec::with_capacity(models);
    for _ in 0..models {
        cluster_err.push(r_f64(r)?);
    }
    let mut clusters = Vec::with_capacity(models);
    for _ in 0..models {
        clusters.push(r_hv(r, dim)?);
    }
    let mut model_hvs = Vec::with_capacity(models);
    for _ in 0..models {
        model_hvs.push(r_hv(r, dim)?);
    }
    Ok(OnlineRegHd::from_parts(
        cfg,
        spec.build(),
        clusters,
        model_hvs,
        intercept,
        samples_seen,
        ewma_sq_err,
        cluster_err,
    ))
}

/// Saves a streaming model to a file path. See [`save_online`].
///
/// # Errors
///
/// Returns [`PersistError::Io`] on filesystem failure.
pub fn save_online_to_file<P: AsRef<Path>>(
    model: &OnlineRegHd,
    spec: &EncoderSpec,
    path: P,
) -> Result<(), PersistError> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    save_online(model, spec, &mut f)
}

/// Loads a streaming model from a file path. See [`load_online`].
///
/// # Errors
///
/// Returns [`PersistError`] on filesystem failure or malformed content.
pub fn load_online_from_file<P: AsRef<Path>>(path: P) -> Result<OnlineRegHd, PersistError> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    load_online(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Regressor;

    fn trained(pred: PredictionMode) -> (RegHdRegressor, EncoderSpec, Vec<Vec<f32>>) {
        let spec = EncoderSpec::Nonlinear {
            input_dim: 3,
            dim: 256,
            seed: 5,
        };
        let cfg = RegHdConfig::builder()
            .dim(256)
            .models(4)
            .max_epochs(6)
            .prediction_mode(pred)
            .cluster_mode(ClusterMode::FrameworkBinary)
            .seed(5)
            .build();
        let mut m = RegHdRegressor::new(cfg, spec.build());
        let xs: Vec<Vec<f32>> = (0..60)
            .map(|i| vec![(i % 5) as f32, (i % 7) as f32 / 7.0, -(i as f32) / 60.0])
            .collect();
        let ys: Vec<f32> = xs.iter().map(|x| x[0] - x[1] + 2.0 * x[2]).collect();
        m.fit(&xs, &ys);
        (m, spec, xs)
    }

    #[test]
    fn roundtrip_predicts_identically_in_every_mode() {
        for pred in PredictionMode::ALL {
            let (model, spec, xs) = trained(pred);
            let mut buf = Vec::new();
            save(&model, &spec, &mut buf).unwrap();
            let loaded = load(&mut buf.as_slice()).unwrap();
            for x in xs.iter().take(10) {
                assert_eq!(
                    loaded.predict_one(x),
                    model.predict_one(x),
                    "mode {pred:?} roundtrip mismatch"
                );
            }
        }
    }

    #[test]
    fn file_roundtrip() {
        let (model, spec, xs) = trained(PredictionMode::Full);
        let path = std::env::temp_dir().join("reghd_persist_test.rghd");
        save_to_file(&model, &spec, &path).unwrap();
        let loaded = load_from_file(&path).unwrap();
        assert_eq!(loaded.predict_one(&xs[0]), model.predict_one(&xs[0]));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let err = load(&mut &b"NOPE\x01\x00"[..]).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)));
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u16.to_le_bytes());
        let err = load(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn rejects_truncated_stream() {
        let (model, spec, _) = trained(PredictionMode::Full);
        let mut buf = Vec::new();
        save(&model, &spec, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(matches!(
            load(&mut buf.as_slice()).unwrap_err(),
            PersistError::Io(_)
        ));
    }

    #[test]
    fn rejects_corrupted_enum_tag() {
        let (model, spec, _) = trained(PredictionMode::Full);
        let mut buf = Vec::new();
        save(&model, &spec, &mut buf).unwrap();
        // The cluster-mode tag sits at a fixed offset:
        // 4 magic + 2 version + 8 dim + 8 models + 4 lr + 8 max + 8 min +
        // 4 tol + 8 patience + 4 beta + 8 qbatch = 66.
        buf[66] = 200;
        let err = load(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("cluster mode"), "err: {err}");
    }

    #[test]
    fn config_survives_roundtrip() {
        let (model, spec, _) = trained(PredictionMode::BinaryQuery);
        let mut buf = Vec::new();
        save(&model, &spec, &mut buf).unwrap();
        let loaded = load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.config(), model.config());
        assert_eq!(loaded.intercept(), model.intercept());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PersistError>();
    }

    fn streamed(n: usize) -> (OnlineRegHd, EncoderSpec, Vec<Vec<f32>>) {
        let spec = EncoderSpec::Nonlinear {
            input_dim: 3,
            dim: 256,
            seed: 9,
        };
        let cfg = RegHdConfig::builder().dim(256).models(4).seed(9).build();
        let mut m = OnlineRegHd::new(cfg, spec.build());
        let xs: Vec<Vec<f32>> = (0..n)
            .map(|i| vec![(i % 5) as f32, (i % 7) as f32 / 7.0, -(i as f32) / 60.0])
            .collect();
        for x in &xs {
            let y = x[0] - x[1] + 2.0 * x[2];
            m.update(x, y);
        }
        (m, spec, xs)
    }

    #[test]
    fn online_roundtrip_is_bit_exact_at_quantization_boundary() {
        let (mut model, spec, xs) = streamed(60);
        model.quantize_now();
        let mut buf = Vec::new();
        save_online(&model, &spec, &mut buf).unwrap();
        let mut loaded = load_online(&mut buf.as_slice()).unwrap();

        assert_eq!(loaded.samples_seen(), model.samples_seen());
        assert_eq!(loaded.prequential_mse(), model.prequential_mse());
        assert_eq!(loaded.cluster_errors(), model.cluster_errors());
        for x in xs.iter().take(10) {
            assert_eq!(loaded.predict_one(x), model.predict_one(x));
        }
        // Continued training must also agree bit-for-bit: the persisted
        // cursor (samples_seen, EWMA, per-cluster errors) drives the same
        // update trajectory as the original.
        for x in xs.iter().take(20) {
            let y = x[0] + 1.0;
            assert_eq!(loaded.update(x, y), model.update(x, y));
        }
        assert_eq!(loaded.prequential_mse(), model.prequential_mse());
    }

    #[test]
    fn online_file_roundtrip() {
        let (mut model, spec, xs) = streamed(40);
        model.quantize_now();
        let path = std::env::temp_dir().join("reghd_persist_online_test.rghd");
        save_online_to_file(&model, &spec, &path).unwrap();
        let loaded = load_online_from_file(&path).unwrap();
        assert_eq!(loaded.predict_one(&xs[0]), model.predict_one(&xs[0]));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn online_and_batch_loaders_reject_each_others_files() {
        let (online, ospec, _) = streamed(30);
        let mut obuf = Vec::new();
        save_online(&online, &ospec, &mut obuf).unwrap();
        let err = load(&mut obuf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("load_online"), "err: {err}");

        let (batch, bspec, _) = trained(PredictionMode::Full);
        let mut bbuf = Vec::new();
        save(&batch, &bspec, &mut bbuf).unwrap();
        let err = load_online(&mut bbuf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("batch model"), "err: {err}");
    }
}
