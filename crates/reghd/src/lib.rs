//! # reghd — hyperdimensional regression (RegHD, DAC 2021)
//!
//! A from-scratch Rust implementation of **RegHD** (Hernandez-Cano, Zou,
//! Zhuo, Yin, Imani — *RegHD: Robust and Efficient Regression in
//! Hyper-Dimensional Learning System*, DAC 2021), the first regression
//! algorithm built on hyperdimensional computing.
//!
//! RegHD encodes feature vectors into high-dimensional space with a
//! similarity-preserving nonlinear encoder and then learns **linearly in HD
//! space**:
//!
//! * [`SingleHdRegressor`] — one model hypervector trained with the delta
//!   rule of Eq. 2 (§2.3).
//! * [`RegHdRegressor`] — the full multi-model system (§2.4): `k` cluster
//!   hypervectors perform run-time clustering of the input space, `k`
//!   model hypervectors perform regression, and predictions are the
//!   confidence-weighted accumulation of all models (Eq. 6).
//! * Quantisation framework (§3): binary cluster search via Hamming
//!   distance ([`config::ClusterMode`]) and three reduced-precision
//!   prediction modes ([`config::PredictionMode`]), all while updating
//!   full-precision model copies during training.
//!
//! ## Quick start
//!
//! ```
//! use reghd::{RegHdRegressor, Regressor, config::RegHdConfig};
//! use encoding::NonlinearEncoder;
//!
//! // A tiny 1-D task: y = sin(3x).
//! let xs: Vec<Vec<f32>> = (0..200).map(|i| vec![i as f32 / 100.0 - 1.0]).collect();
//! let ys: Vec<f32> = xs.iter().map(|x| (3.0 * x[0]).sin()).collect();
//!
//! let config = RegHdConfig::builder().dim(2048).models(4).build();
//! let encoder = NonlinearEncoder::new(1, 2048, 42);
//! let mut model = RegHdRegressor::new(config, Box::new(encoder));
//!
//! let report = model.fit(&xs, &ys);
//! assert!(report.final_mse().unwrap() < 0.05);
//! let pred = model.predict_one(&[0.25]);
//! assert!((pred - (0.75f32).sin()).abs() < 0.3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod banks;
pub mod config;
pub mod diagnostics;
pub mod model;
pub mod online;
pub mod persist;
pub mod single;
pub mod sparse;
pub mod traits;

pub use config::RegHdConfig;
pub use model::{PredictScratch, RegHdRegressor};
pub use online::OnlineRegHd;
pub use single::SingleHdRegressor;
pub use traits::{FitReport, Regressor};
