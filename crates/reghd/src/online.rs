//! Single-pass / streaming RegHD.
//!
//! HD computing's signature capability (and the reason the paper targets
//! IoT systems) is **single-pass, online learning**: each sample updates
//! the model once and is never revisited. [`OnlineRegHd`] exposes RegHD in
//! that regime: [`OnlineRegHd::update`] consumes one `(x, y)` pair,
//! returns the *prequential* (predict-then-train) error, and keeps running
//! quality statistics. Used as a [`Regressor`], `fit` performs exactly one
//! pass — the paper's "single-pass model" of §2.3, whose accuracy gap to
//! iterative training is part of Figure 3a's story.
//!
//! Differences from the batch trainer: encodings cannot be mean-centred
//! (the mean is unknown upfront), so the encoder bias is absorbed by the
//! always-on intercept, and there is no convergence rule — the stream
//! decides when to stop.

use crate::banks::{ClusterBank, EncodedQuery, ModelBank};
use crate::config::{RegHdConfig, UpdateRule};
use crate::traits::{FitReport, Regressor};
use encoding::Encoder;
use hdc::rng::HdRng;
use hdc::similarity::{argmax, softmax};

/// Streaming RegHD: one update per sample, no second pass.
///
/// # Examples
///
/// ```
/// use reghd::{OnlineRegHd, config::RegHdConfig};
/// use encoding::NonlinearEncoder;
///
/// let cfg = RegHdConfig::builder().dim(1024).models(2).build();
/// let mut model = OnlineRegHd::new(cfg, Box::new(NonlinearEncoder::new(1, 1024, 7)));
/// // Stream y = 2x; the prequential error shrinks as samples arrive.
/// let mut late_err = 0.0;
/// for i in 0..500 {
///     let x = [(i % 100) as f32 / 50.0 - 1.0];
///     let err = model.update(&x, 2.0 * x[0]);
///     if i >= 400 { late_err += err.abs(); }
/// }
/// assert!(late_err / 100.0 < 0.2);
/// ```
pub struct OnlineRegHd {
    config: RegHdConfig,
    encoder: Box<dyn Encoder>,
    clusters: ClusterBank,
    models: ModelBank,
    intercept: f32,
    samples_seen: u64,
    /// Exponentially weighted prequential squared error.
    ewma_sq_err: f64,
    ewma_alpha: f64,
    /// Per-cluster EWMA of the absolute prequential error, attributed to
    /// the argmax cluster of each sample. Drift responders use this to
    /// pick the worst-performing cluster to evict.
    cluster_err: Vec<f64>,
}

impl std::fmt::Debug for OnlineRegHd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlineRegHd")
            .field("dim", &self.config.dim)
            .field("models", &self.config.models)
            .field("samples_seen", &self.samples_seen)
            .finish()
    }
}

impl OnlineRegHd {
    /// Creates a streaming regressor. `config.center_encodings` is ignored
    /// (a stream has no precomputable mean); the intercept is always
    /// learned.
    ///
    /// # Panics
    ///
    /// Panics if `encoder.dim() != config.dim` or the config is invalid.
    pub fn new(mut config: RegHdConfig, encoder: Box<dyn Encoder>) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid RegHdConfig: {e}"));
        assert_eq!(
            encoder.dim(),
            config.dim,
            "encoder dim {} does not match config dim {}",
            encoder.dim(),
            config.dim
        );
        config.center_encodings = false;
        config.intercept = true;
        let mut rng = HdRng::seed_from(config.seed ^ ONLINE_SEED_SALT);
        let clusters = ClusterBank::new(config.models, config.dim, config.cluster_mode, &mut rng);
        let models = ModelBank::new(config.models, config.dim, config.prediction_mode);
        let k = config.models;
        Self {
            config,
            encoder,
            clusters,
            models,
            intercept: 0.0,
            samples_seen: 0,
            ewma_sq_err: 0.0,
            ewma_alpha: 0.02,
            cluster_err: vec![0.0; k],
        }
    }

    /// Rebuilds a streaming regressor from persisted state (see
    /// [`crate::persist::load_online`]). Binary bank copies are re-derived
    /// from the integer copies, so a model saved at a quantisation
    /// boundary (see [`OnlineRegHd::quantize_now`]) round-trips bit-exact.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid or any shape disagrees with it.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        mut config: RegHdConfig,
        encoder: Box<dyn Encoder>,
        clusters_int: Vec<hdc::RealHv>,
        models_int: Vec<hdc::RealHv>,
        intercept: f32,
        samples_seen: u64,
        ewma_sq_err: f64,
        cluster_err: Vec<f64>,
    ) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid RegHdConfig: {e}"));
        assert_eq!(encoder.dim(), config.dim, "encoder/config dim mismatch");
        assert_eq!(clusters_int.len(), config.models, "cluster count mismatch");
        assert_eq!(models_int.len(), config.models, "model count mismatch");
        assert_eq!(cluster_err.len(), config.models, "cluster_err mismatch");
        assert!(
            clusters_int
                .iter()
                .chain(&models_int)
                .all(|v| v.dim() == config.dim),
            "bank vectors must match config.dim"
        );
        config.center_encodings = false;
        config.intercept = true;
        let clusters = ClusterBank::from_parts(config.cluster_mode, clusters_int);
        let models = ModelBank::from_parts(config.prediction_mode, models_int);
        Self {
            config,
            encoder,
            clusters,
            models,
            intercept,
            samples_seen,
            ewma_sq_err,
            ewma_alpha: 0.02,
            cluster_err,
        }
    }

    /// Number of samples consumed so far.
    pub fn samples_seen(&self) -> u64 {
        self.samples_seen
    }

    /// The configuration this regressor runs with (after the streaming
    /// normalisation applied by [`OnlineRegHd::new`]).
    pub fn config(&self) -> &RegHdConfig {
        &self.config
    }

    /// The learned intercept.
    pub fn intercept(&self) -> f32 {
        self.intercept
    }

    /// The cluster bank (inspection and persistence access).
    pub fn clusters(&self) -> &ClusterBank {
        &self.clusters
    }

    /// The model bank (inspection and persistence access).
    pub fn models(&self) -> &ModelBank {
        &self.models
    }

    /// Per-cluster EWMA of the absolute prequential error (attributed to
    /// each sample's argmax cluster).
    pub fn cluster_errors(&self) -> &[f64] {
        &self.cluster_err
    }

    /// Exponentially weighted moving average of the prequential squared
    /// error (0 before any update).
    pub fn prequential_mse(&self) -> f32 {
        self.ewma_sq_err as f32
    }

    /// The raw f64 prequential EWMA state ([`crate::persist`] stores this
    /// bit-exactly so a resumed trainer continues the same statistic).
    pub(crate) fn ewma_sq_err_raw(&self) -> f64 {
        self.ewma_sq_err
    }

    fn encode(&self, x: &[f32]) -> EncodedQuery {
        // Fused single-pass encoding (§3.1: quantised training keeps an
        // integer and a binary copy of every encoded point). Sound here
        // because this trainer never centres encodings (`new` forces
        // `center_encodings = false`) and `normalize` only scales by a
        // positive factor, which cannot flip the sign of any component —
        // so the pre-normalisation binary view equals the
        // post-normalisation one that `EncodedQuery::new` would derive.
        let (mut s, binary) = self.encoder.encode_both(x);
        if self.config.normalize_encodings {
            s.normalize();
        }
        EncodedQuery::from_parts(s, binary)
    }

    fn forward(&self, q: &EncodedQuery) -> (f32, Vec<f32>, Vec<f32>) {
        let sims = self.clusters.similarities(&q.real, &q.binary);
        let conf = softmax(&sims, self.config.softmax_beta);
        let scores = self.models.scores(&q.real, &q.binary, q.amp);
        let pred: f32 =
            conf.iter().zip(&scores).map(|(&c, &s)| c * s).sum::<f32>() + self.intercept;
        (pred, conf, sims)
    }

    /// Consumes one sample: predicts, measures the prequential error,
    /// applies the RegHD updates (Eq. 7/8), and returns `y − ŷ`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong feature width.
    pub fn update(&mut self, x: &[f32], y: f32) -> f32 {
        let q = self.encode(x);
        let (pred, conf, sims) = self.forward(&q);
        let err = y - pred;

        let alpha = self.config.learning_rate;
        match self.config.update_rule {
            UpdateRule::ConfidenceWeighted => {
                for (i, &c) in conf.iter().enumerate() {
                    if c > 1e-6 {
                        self.models.update(i, alpha * c * err, &q.real);
                    }
                }
            }
            UpdateRule::SharedError => {
                for i in 0..conf.len() {
                    self.models.update(i, alpha * err, &q.real);
                }
            }
            UpdateRule::ArgmaxOnly => {
                if let Some(l) = argmax(&conf) {
                    self.models.update(l, alpha * err, &q.real);
                }
            }
        }
        self.intercept += alpha * 0.1 * err;
        if let Some(l) = argmax(&sims) {
            self.clusters.update(l, sims[l], &q.real);
            let b = CLUSTER_ERR_ALPHA;
            self.cluster_err[l] = (1.0 - b) * self.cluster_err[l] + b * (err.abs() as f64);
        }

        self.samples_seen += 1;
        if self
            .samples_seen
            .is_multiple_of(self.config.quantize_batch as u64)
        {
            self.models.end_epoch();
            self.clusters.end_epoch();
        }

        let a = self.ewma_alpha;
        self.ewma_sq_err = (1.0 - a) * self.ewma_sq_err + a * (err as f64) * (err as f64);
        err
    }

    /// Index of the cluster with the highest attributed prequential error
    /// — the eviction candidate when a drift detector fires.
    pub fn worst_cluster(&self) -> usize {
        self.cluster_err
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Evicts cluster `l`: the cluster hypervector is re-initialised to
    /// fresh random binary values, its model hypervector to zero, and its
    /// error attribution cleared — the drift-recovery hook. The fresh
    /// random vector is deterministic given the config seed and the number
    /// of samples seen, so a checkpointed-and-resumed trainer resets
    /// identically.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn reset_cluster(&mut self, l: usize) {
        let mut rng = HdRng::seed_from(
            self.config.seed
                ^ ONLINE_SEED_SALT
                ^ (self.samples_seen.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        self.clusters.reset(l, &mut rng);
        self.models.reset(l);
        self.cluster_err[l] = 0.0;
    }

    /// Forces a quantisation boundary now: binary bank copies and
    /// amplitudes are refreshed from the integer copies, exactly as at a
    /// `quantize_batch` boundary. Checkpointing calls this first so the
    /// persisted integer state fully determines prediction behaviour (the
    /// binary copies are re-derived on load).
    pub fn quantize_now(&mut self) {
        self.models.end_epoch();
        self.clusters.end_epoch();
    }

    /// Snapshots the current learned state as a batch [`RegHdRegressor`]
    /// (binary copies re-derived), the form the serving bundle embeds.
    /// `spec` must describe this model's encoder; predictions of the
    /// snapshot match the live model bit-exactly when taken at a
    /// quantisation boundary ([`OnlineRegHd::quantize_now`]).
    ///
    /// # Panics
    ///
    /// Panics if `spec` does not match the config's dimensionality.
    pub fn snapshot(&self, spec: &encoding::EncoderSpec) -> crate::RegHdRegressor {
        crate::RegHdRegressor::from_parts(
            self.config.clone(),
            spec.build(),
            self.clusters.integer_clusters().to_vec(),
            self.models.integer_models().to_vec(),
            None,
            self.intercept,
        )
    }
}

impl Regressor for OnlineRegHd {
    /// Single pass over the data, in the order given (no shuffling — the
    /// stream's order is the stream's order). Resets any previous state.
    fn fit(&mut self, features: &[Vec<f32>], targets: &[f32]) -> FitReport {
        assert_eq!(
            features.len(),
            targets.len(),
            "features and targets must have the same length"
        );
        assert!(!features.is_empty(), "cannot fit on empty data");
        // Reset.
        let mut rng = HdRng::seed_from(self.config.seed ^ ONLINE_SEED_SALT);
        self.clusters = ClusterBank::new(
            self.config.models,
            self.config.dim,
            self.config.cluster_mode,
            &mut rng,
        );
        self.models = ModelBank::new(
            self.config.models,
            self.config.dim,
            self.config.prediction_mode,
        );
        self.intercept = 0.0;
        self.samples_seen = 0;
        self.ewma_sq_err = 0.0;
        self.cluster_err = vec![0.0; self.config.models];

        let mut sq = 0.0f64;
        for (x, &y) in features.iter().zip(targets) {
            let e = self.update(x, y);
            sq += (e as f64) * (e as f64);
        }
        self.models.end_epoch();
        self.clusters.end_epoch();
        FitReport {
            epochs: 1,
            train_mse_history: vec![(sq / targets.len() as f64) as f32],
            converged: false,
        }
    }

    fn predict_one(&self, x: &[f32]) -> f32 {
        let q = self.encode(x);
        self.forward(&q).0
    }

    fn name(&self) -> String {
        format!("RegHD-online-{}", self.config.models)
    }
}

/// Seed salt separating the streaming trainer's RNG stream from the batch
/// trainer's.
const ONLINE_SEED_SALT: u64 = 0x04_71_13_E5;

/// EWMA rate for the per-cluster error attribution.
const CLUSTER_ERR_ALPHA: f64 = 0.05;

#[cfg(test)]
mod tests {
    use super::*;
    use encoding::NonlinearEncoder;

    fn make(k: usize, seed: u64) -> OnlineRegHd {
        let cfg = RegHdConfig::builder()
            .dim(1024)
            .models(k)
            .seed(seed)
            .build();
        OnlineRegHd::new(cfg, Box::new(NonlinearEncoder::new(2, 1024, seed)))
    }

    fn stream(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<f32>) {
        let mut rng = HdRng::seed_from(seed);
        let xs: Vec<Vec<f32>> = (0..n)
            .map(|_| vec![rng.next_f32() * 2.0 - 1.0, rng.next_f32() * 2.0 - 1.0])
            .collect();
        let ys = xs.iter().map(|x| x[0] + (2.0 * x[1]).sin()).collect();
        (xs, ys)
    }

    #[test]
    fn prequential_error_shrinks() {
        let (xs, ys) = stream(800, 1);
        let mut m = make(2, 1);
        let mut early = 0.0f64;
        let mut late = 0.0f64;
        for (i, (x, &y)) in xs.iter().zip(&ys).enumerate() {
            let e = m.update(x, y) as f64;
            if i < 100 {
                early += e * e;
            }
            if i >= 700 {
                late += e * e;
            }
        }
        assert!(
            late < 0.3 * early,
            "streaming should learn: early={early:.2} late={late:.2}"
        );
        assert_eq!(m.samples_seen(), 800);
        assert!(m.prequential_mse() > 0.0);
    }

    #[test]
    fn single_pass_fit_learns_but_less_than_iterative() {
        // Figure 3a's premise: one pass learns something; iterations help.
        let (xs, ys) = stream(500, 2);
        let mut online = make(2, 2);
        online.fit(&xs, &ys);
        let preds = online.predict(&xs);
        let mse_online: f32 = preds
            .iter()
            .zip(&ys)
            .map(|(&p, &y)| (p - y) * (p - y))
            .sum::<f32>()
            / ys.len() as f32;

        let cfg = RegHdConfig::builder()
            .dim(1024)
            .models(2)
            .max_epochs(20)
            .seed(2)
            .build();
        let mut iterative =
            crate::RegHdRegressor::new(cfg, Box::new(NonlinearEncoder::new(2, 1024, 2)));
        iterative.fit(&xs, &ys);
        let preds = iterative.predict(&xs);
        let mse_iter: f32 = preds
            .iter()
            .zip(&ys)
            .map(|(&p, &y)| (p - y) * (p - y))
            .sum::<f32>()
            / ys.len() as f32;

        let var = {
            let mean: f32 = ys.iter().sum::<f32>() / ys.len() as f32;
            ys.iter().map(|&y| (y - mean) * (y - mean)).sum::<f32>() / ys.len() as f32
        };
        assert!(
            mse_online < 0.5 * var,
            "single pass must learn: {mse_online} vs {var}"
        );
        assert!(
            mse_iter <= mse_online * 1.05,
            "iterative ({mse_iter}) should not lose to single-pass ({mse_online})"
        );
    }

    #[test]
    fn adapts_to_concept_drift() {
        // The function flips sign mid-stream; online updates track it.
        let mut m = make(2, 3);
        let mut rng = HdRng::seed_from(3);
        for _ in 0..600 {
            let x = [rng.next_f32() * 2.0 - 1.0, 0.0];
            m.update(&x, 2.0 * x[0]);
        }
        let before = m.predict_one(&[0.5, 0.0]);
        for _ in 0..1200 {
            let x = [rng.next_f32() * 2.0 - 1.0, 0.0];
            m.update(&x, -2.0 * x[0]);
        }
        let after = m.predict_one(&[0.5, 0.0]);
        assert!(before > 0.4, "before drift: {before}");
        assert!(after < -0.4, "after drift: {after}");
    }

    #[test]
    fn fit_resets_state() {
        let (xs, ys) = stream(200, 4);
        let mut m = make(2, 4);
        m.fit(&xs, &ys);
        let p1 = m.predict_one(&xs[0]);
        m.fit(&xs, &ys);
        assert_eq!(m.predict_one(&xs[0]), p1);
        assert_eq!(m.samples_seen(), 200);
    }

    #[test]
    fn name_reflects_streaming() {
        assert_eq!(make(4, 0).name(), "RegHD-online-4");
    }

    #[test]
    fn cluster_error_attribution_and_reset() {
        let (xs, ys) = stream(400, 5);
        let mut m = make(3, 5);
        for (x, &y) in xs.iter().zip(&ys) {
            m.update(x, y);
        }
        assert!(m.cluster_errors().iter().any(|&e| e > 0.0));
        let worst = m.worst_cluster();
        assert!(worst < 3);
        m.reset_cluster(worst);
        assert_eq!(m.cluster_errors()[worst], 0.0);
        // The evicted pair contributes a zero model score; the regressor
        // keeps predicting finite values and keeps learning.
        assert!(m.predict_one(&xs[0]).is_finite());
        let mut late = 0.0f64;
        for (x, &y) in xs.iter().zip(&ys) {
            late += m.update(x, y).abs() as f64;
        }
        assert!(late.is_finite());
    }

    #[test]
    fn reset_is_deterministic_in_sample_position() {
        let (xs, ys) = stream(100, 6);
        let mut a = make(2, 6);
        let mut b = make(2, 6);
        for (x, &y) in xs.iter().zip(&ys) {
            a.update(x, y);
            b.update(x, y);
        }
        a.reset_cluster(0);
        b.reset_cluster(0);
        assert_eq!(
            a.clusters().integer_clusters()[0],
            b.clusters().integer_clusters()[0]
        );
    }

    #[test]
    fn snapshot_predicts_identically_at_quantization_boundary() {
        use encoding::EncoderSpec;
        let spec = EncoderSpec::Nonlinear {
            input_dim: 2,
            dim: 1024,
            seed: 7,
        };
        let cfg = RegHdConfig::builder().dim(1024).models(2).seed(7).build();
        let mut m = OnlineRegHd::new(cfg, spec.build());
        let (xs, ys) = stream(300, 7);
        for (x, &y) in xs.iter().zip(&ys) {
            m.update(x, y);
        }
        m.quantize_now();
        let snap = m.snapshot(&spec);
        for x in xs.iter().take(20) {
            assert_eq!(snap.predict_one(x).to_bits(), m.predict_one(x).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_fit_panics() {
        make(1, 0).fit(&[], &[]);
    }
}
