//! Single-pass / streaming RegHD.
//!
//! HD computing's signature capability (and the reason the paper targets
//! IoT systems) is **single-pass, online learning**: each sample updates
//! the model once and is never revisited. [`OnlineRegHd`] exposes RegHD in
//! that regime: [`OnlineRegHd::update`] consumes one `(x, y)` pair,
//! returns the *prequential* (predict-then-train) error, and keeps running
//! quality statistics. Used as a [`Regressor`], `fit` performs exactly one
//! pass — the paper's "single-pass model" of §2.3, whose accuracy gap to
//! iterative training is part of Figure 3a's story.
//!
//! Differences from the batch trainer: encodings cannot be mean-centred
//! (the mean is unknown upfront), so the encoder bias is absorbed by the
//! always-on intercept, and there is no convergence rule — the stream
//! decides when to stop.

use crate::banks::{ClusterBank, EncodedQuery, ModelBank};
use crate::config::{RegHdConfig, UpdateRule};
use crate::traits::{FitReport, Regressor};
use encoding::Encoder;
use hdc::rng::HdRng;
use hdc::similarity::{argmax, softmax};

/// Streaming RegHD: one update per sample, no second pass.
///
/// # Examples
///
/// ```
/// use reghd::{OnlineRegHd, config::RegHdConfig};
/// use encoding::NonlinearEncoder;
///
/// let cfg = RegHdConfig::builder().dim(1024).models(2).build();
/// let mut model = OnlineRegHd::new(cfg, Box::new(NonlinearEncoder::new(1, 1024, 7)));
/// // Stream y = 2x; the prequential error shrinks as samples arrive.
/// let mut late_err = 0.0;
/// for i in 0..500 {
///     let x = [(i % 100) as f32 / 50.0 - 1.0];
///     let err = model.update(&x, 2.0 * x[0]);
///     if i >= 400 { late_err += err.abs(); }
/// }
/// assert!(late_err / 100.0 < 0.2);
/// ```
pub struct OnlineRegHd {
    config: RegHdConfig,
    encoder: Box<dyn Encoder>,
    clusters: ClusterBank,
    models: ModelBank,
    intercept: f32,
    samples_seen: u64,
    /// Exponentially weighted prequential squared error.
    ewma_sq_err: f64,
    ewma_alpha: f64,
}

impl std::fmt::Debug for OnlineRegHd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlineRegHd")
            .field("dim", &self.config.dim)
            .field("models", &self.config.models)
            .field("samples_seen", &self.samples_seen)
            .finish()
    }
}

impl OnlineRegHd {
    /// Creates a streaming regressor. `config.center_encodings` is ignored
    /// (a stream has no precomputable mean); the intercept is always
    /// learned.
    ///
    /// # Panics
    ///
    /// Panics if `encoder.dim() != config.dim` or the config is invalid.
    pub fn new(mut config: RegHdConfig, encoder: Box<dyn Encoder>) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid RegHdConfig: {e}"));
        assert_eq!(
            encoder.dim(),
            config.dim,
            "encoder dim {} does not match config dim {}",
            encoder.dim(),
            config.dim
        );
        config.center_encodings = false;
        config.intercept = true;
        let mut rng = HdRng::seed_from(config.seed ^ ONLINE_SEED_SALT);
        let clusters = ClusterBank::new(config.models, config.dim, config.cluster_mode, &mut rng);
        let models = ModelBank::new(config.models, config.dim, config.prediction_mode);
        Self {
            config,
            encoder,
            clusters,
            models,
            intercept: 0.0,
            samples_seen: 0,
            ewma_sq_err: 0.0,
            ewma_alpha: 0.02,
        }
    }

    /// Number of samples consumed so far.
    pub fn samples_seen(&self) -> u64 {
        self.samples_seen
    }

    /// Exponentially weighted moving average of the prequential squared
    /// error (0 before any update).
    pub fn prequential_mse(&self) -> f32 {
        self.ewma_sq_err as f32
    }

    fn encode(&self, x: &[f32]) -> EncodedQuery {
        let mut s = self.encoder.encode(x);
        if self.config.normalize_encodings {
            s.normalize();
        }
        EncodedQuery::new(s)
    }

    fn forward(&self, q: &EncodedQuery) -> (f32, Vec<f32>, Vec<f32>) {
        let sims = self.clusters.similarities(&q.real, &q.binary);
        let conf = softmax(&sims, self.config.softmax_beta);
        let scores = self.models.scores(&q.real, &q.binary, q.amp);
        let pred: f32 =
            conf.iter().zip(&scores).map(|(&c, &s)| c * s).sum::<f32>() + self.intercept;
        (pred, conf, sims)
    }

    /// Consumes one sample: predicts, measures the prequential error,
    /// applies the RegHD updates (Eq. 7/8), and returns `y − ŷ`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong feature width.
    pub fn update(&mut self, x: &[f32], y: f32) -> f32 {
        let q = self.encode(x);
        let (pred, conf, sims) = self.forward(&q);
        let err = y - pred;

        let alpha = self.config.learning_rate;
        match self.config.update_rule {
            UpdateRule::ConfidenceWeighted => {
                for (i, &c) in conf.iter().enumerate() {
                    if c > 1e-6 {
                        self.models.update(i, alpha * c * err, &q.real);
                    }
                }
            }
            UpdateRule::SharedError => {
                for i in 0..conf.len() {
                    self.models.update(i, alpha * err, &q.real);
                }
            }
            UpdateRule::ArgmaxOnly => {
                if let Some(l) = argmax(&conf) {
                    self.models.update(l, alpha * err, &q.real);
                }
            }
        }
        self.intercept += alpha * 0.1 * err;
        if let Some(l) = argmax(&sims) {
            self.clusters.update(l, sims[l], &q.real);
        }

        self.samples_seen += 1;
        if self
            .samples_seen
            .is_multiple_of(self.config.quantize_batch as u64)
        {
            self.models.end_epoch();
            self.clusters.end_epoch();
        }

        let a = self.ewma_alpha;
        self.ewma_sq_err = (1.0 - a) * self.ewma_sq_err + a * (err as f64) * (err as f64);
        err
    }
}

impl Regressor for OnlineRegHd {
    /// Single pass over the data, in the order given (no shuffling — the
    /// stream's order is the stream's order). Resets any previous state.
    fn fit(&mut self, features: &[Vec<f32>], targets: &[f32]) -> FitReport {
        assert_eq!(
            features.len(),
            targets.len(),
            "features and targets must have the same length"
        );
        assert!(!features.is_empty(), "cannot fit on empty data");
        // Reset.
        let mut rng = HdRng::seed_from(self.config.seed ^ ONLINE_SEED_SALT);
        self.clusters = ClusterBank::new(
            self.config.models,
            self.config.dim,
            self.config.cluster_mode,
            &mut rng,
        );
        self.models = ModelBank::new(
            self.config.models,
            self.config.dim,
            self.config.prediction_mode,
        );
        self.intercept = 0.0;
        self.samples_seen = 0;
        self.ewma_sq_err = 0.0;

        let mut sq = 0.0f64;
        for (x, &y) in features.iter().zip(targets) {
            let e = self.update(x, y);
            sq += (e as f64) * (e as f64);
        }
        self.models.end_epoch();
        self.clusters.end_epoch();
        FitReport {
            epochs: 1,
            train_mse_history: vec![(sq / targets.len() as f64) as f32],
            converged: false,
        }
    }

    fn predict_one(&self, x: &[f32]) -> f32 {
        let q = self.encode(x);
        self.forward(&q).0
    }

    fn name(&self) -> String {
        format!("RegHD-online-{}", self.config.models)
    }
}

/// Seed salt separating the streaming trainer's RNG stream from the batch
/// trainer's.
const ONLINE_SEED_SALT: u64 = 0x04_71_13_E5;

#[cfg(test)]
mod tests {
    use super::*;
    use encoding::NonlinearEncoder;

    fn make(k: usize, seed: u64) -> OnlineRegHd {
        let cfg = RegHdConfig::builder()
            .dim(1024)
            .models(k)
            .seed(seed)
            .build();
        OnlineRegHd::new(cfg, Box::new(NonlinearEncoder::new(2, 1024, seed)))
    }

    fn stream(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<f32>) {
        let mut rng = HdRng::seed_from(seed);
        let xs: Vec<Vec<f32>> = (0..n)
            .map(|_| vec![rng.next_f32() * 2.0 - 1.0, rng.next_f32() * 2.0 - 1.0])
            .collect();
        let ys = xs.iter().map(|x| x[0] + (2.0 * x[1]).sin()).collect();
        (xs, ys)
    }

    #[test]
    fn prequential_error_shrinks() {
        let (xs, ys) = stream(800, 1);
        let mut m = make(2, 1);
        let mut early = 0.0f64;
        let mut late = 0.0f64;
        for (i, (x, &y)) in xs.iter().zip(&ys).enumerate() {
            let e = m.update(x, y) as f64;
            if i < 100 {
                early += e * e;
            }
            if i >= 700 {
                late += e * e;
            }
        }
        assert!(
            late < 0.3 * early,
            "streaming should learn: early={early:.2} late={late:.2}"
        );
        assert_eq!(m.samples_seen(), 800);
        assert!(m.prequential_mse() > 0.0);
    }

    #[test]
    fn single_pass_fit_learns_but_less_than_iterative() {
        // Figure 3a's premise: one pass learns something; iterations help.
        let (xs, ys) = stream(500, 2);
        let mut online = make(2, 2);
        online.fit(&xs, &ys);
        let preds = online.predict(&xs);
        let mse_online: f32 = preds
            .iter()
            .zip(&ys)
            .map(|(&p, &y)| (p - y) * (p - y))
            .sum::<f32>()
            / ys.len() as f32;

        let cfg = RegHdConfig::builder()
            .dim(1024)
            .models(2)
            .max_epochs(20)
            .seed(2)
            .build();
        let mut iterative =
            crate::RegHdRegressor::new(cfg, Box::new(NonlinearEncoder::new(2, 1024, 2)));
        iterative.fit(&xs, &ys);
        let preds = iterative.predict(&xs);
        let mse_iter: f32 = preds
            .iter()
            .zip(&ys)
            .map(|(&p, &y)| (p - y) * (p - y))
            .sum::<f32>()
            / ys.len() as f32;

        let var = {
            let mean: f32 = ys.iter().sum::<f32>() / ys.len() as f32;
            ys.iter().map(|&y| (y - mean) * (y - mean)).sum::<f32>() / ys.len() as f32
        };
        assert!(
            mse_online < 0.5 * var,
            "single pass must learn: {mse_online} vs {var}"
        );
        assert!(
            mse_iter <= mse_online * 1.05,
            "iterative ({mse_iter}) should not lose to single-pass ({mse_online})"
        );
    }

    #[test]
    fn adapts_to_concept_drift() {
        // The function flips sign mid-stream; online updates track it.
        let mut m = make(2, 3);
        let mut rng = HdRng::seed_from(3);
        for _ in 0..600 {
            let x = [rng.next_f32() * 2.0 - 1.0, 0.0];
            m.update(&x, 2.0 * x[0]);
        }
        let before = m.predict_one(&[0.5, 0.0]);
        for _ in 0..1200 {
            let x = [rng.next_f32() * 2.0 - 1.0, 0.0];
            m.update(&x, -2.0 * x[0]);
        }
        let after = m.predict_one(&[0.5, 0.0]);
        assert!(before > 0.4, "before drift: {before}");
        assert!(after < -0.4, "after drift: {after}");
    }

    #[test]
    fn fit_resets_state() {
        let (xs, ys) = stream(200, 4);
        let mut m = make(2, 4);
        m.fit(&xs, &ys);
        let p1 = m.predict_one(&xs[0]);
        m.fit(&xs, &ys);
        assert_eq!(m.predict_one(&xs[0]), p1);
        assert_eq!(m.samples_seen(), 200);
    }

    #[test]
    fn name_reflects_streaming() {
        assert_eq!(make(4, 0).name(), "RegHD-online-4");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_fit_panics() {
        make(1, 0).fit(&[], &[]);
    }
}
