//! Model sparsification — the SparseHD-style extension the paper's related
//! work (§5) points at: "we can use these frameworks to sparsify the
//! regression model".
//!
//! After training, the smallest-magnitude components of each model
//! hypervector are dropped (set to zero). Because HD representations are
//! holographic, the dot products that drive predictions degrade gracefully
//! as density falls; the retained components can be stored and processed
//! in compressed form, cutting the §3.2 prediction cost proportionally.
//!
//! The bench ablation (`cargo run -p reghd-bench --bin ablation`) and the
//! unit tests quantify the quality/density trade-off.

use crate::model::RegHdRegressor;

/// Result of sparsifying a trained model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsityReport {
    /// Fraction of components that remain nonzero, averaged over models.
    pub density: f32,
    /// Components zeroed across all model hypervectors.
    pub zeroed: usize,
    /// Components retained across all model hypervectors.
    pub retained: usize,
}

impl RegHdRegressor {
    /// Fraction of nonzero components across the model hypervectors
    /// (1.0 for a freshly trained dense model, 0.0 before training).
    pub fn model_density(&self) -> f32 {
        let mut nonzero = 0usize;
        let mut total = 0usize;
        for m in self.models().integer_models() {
            nonzero += m.as_slice().iter().filter(|&&v| v != 0.0).count();
            total += m.dim();
        }
        if total == 0 {
            return 0.0;
        }
        nonzero as f32 / total as f32
    }

    /// Drops the `1 − keep_fraction` smallest-magnitude components of each
    /// model hypervector, then re-derives the binary copies/amplitudes so
    /// every prediction mode sees the sparsified model.
    ///
    /// Per-model thresholding (rather than global) keeps each expert's
    /// strongest components regardless of relative model norms.
    ///
    /// # Panics
    ///
    /// Panics if `keep_fraction` is not within `(0, 1]`.
    pub fn sparsify_models(&mut self, keep_fraction: f32) -> SparsityReport {
        assert!(
            keep_fraction > 0.0 && keep_fraction <= 1.0,
            "keep_fraction must be in (0, 1]"
        );
        let mut zeroed = 0usize;
        let mut retained = 0usize;
        let bank = self.models_mut();
        for mi in 0..bank.len() {
            let m = bank.integer_model_mut(mi);
            let dim = m.dim();
            let keep = ((dim as f32 * keep_fraction).ceil() as usize).min(dim);
            if keep == dim {
                retained += m.as_slice().iter().filter(|&&v| v != 0.0).count();
                continue;
            }
            // Find the magnitude threshold via select-by-sorting magnitudes.
            let mut mags: Vec<f32> = m.as_slice().iter().map(|&v| v.abs()).collect();
            mags.sort_by(f32::total_cmp);
            let threshold = mags[dim - keep];
            for v in m.as_mut_slice() {
                if v.abs() < threshold || *v == 0.0 {
                    if *v != 0.0 {
                        zeroed += 1;
                    }
                    *v = 0.0;
                } else {
                    retained += 1;
                }
            }
        }
        bank.end_epoch_forced();
        let total = (zeroed + retained).max(1);
        SparsityReport {
            density: retained as f32 / total as f32,
            zeroed,
            retained,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RegHdConfig;
    use crate::Regressor;
    use encoding::NonlinearEncoder;
    use hdc::rng::HdRng;

    fn trained() -> (RegHdRegressor, Vec<Vec<f32>>, Vec<f32>) {
        let mut rng = HdRng::seed_from(71);
        let xs: Vec<Vec<f32>> = (0..300)
            .map(|_| vec![rng.next_f32() * 2.0 - 1.0, rng.next_f32() * 2.0 - 1.0])
            .collect();
        let ys: Vec<f32> = xs.iter().map(|x| x[0] + (2.0 * x[1]).sin()).collect();
        let cfg = RegHdConfig::builder()
            .dim(2048)
            .models(4)
            .max_epochs(15)
            .seed(71)
            .build();
        let mut m = RegHdRegressor::new(cfg, Box::new(NonlinearEncoder::new(2, 2048, 71)));
        m.fit(&xs, &ys);
        (m, xs, ys)
    }

    fn mse(m: &RegHdRegressor, xs: &[Vec<f32>], ys: &[f32]) -> f32 {
        m.predict(xs)
            .iter()
            .zip(ys)
            .map(|(&p, &y)| (p - y) * (p - y))
            .sum::<f32>()
            / ys.len() as f32
    }

    #[test]
    fn density_reflects_keep_fraction() {
        let (mut m, _, _) = trained();
        assert!(m.model_density() > 0.95);
        let report = m.sparsify_models(0.25);
        assert!((report.density - 0.25).abs() < 0.02, "{report:?}");
        assert!((m.model_density() - 0.25).abs() < 0.02);
    }

    #[test]
    fn moderate_sparsity_keeps_quality() {
        let (mut m, xs, ys) = trained();
        let dense = mse(&m, &xs, &ys);
        m.sparsify_models(0.5);
        let sparse = mse(&m, &xs, &ys);
        let mean: f32 = ys.iter().sum::<f32>() / ys.len() as f32;
        let var: f32 = ys.iter().map(|&y| (y - mean) * (y - mean)).sum::<f32>() / ys.len() as f32;
        assert!(
            sparse < dense + 0.1 * var,
            "50% sparsity cost too much: {dense} -> {sparse} (var {var})"
        );
    }

    #[test]
    fn quality_degrades_monotonically_with_sparsity() {
        let (m0, xs, ys) = trained();
        let mut errs = Vec::new();
        for keep in [1.0f32, 0.5, 0.2, 0.05] {
            let mut m = trained().0;
            let _ = &m0;
            if keep < 1.0 {
                m.sparsify_models(keep);
            }
            errs.push(mse(&m, &xs, &ys));
        }
        // Allow small non-monotonicity at high densities; the extreme end
        // must be clearly worse than dense.
        assert!(
            errs[3] > errs[0],
            "5% density should hurt: dense {} vs sparse {}",
            errs[0],
            errs[3]
        );
    }

    #[test]
    fn sparsify_keeps_every_prediction_mode_consistent() {
        // Binary copies must be refreshed from the sparsified models.
        let (mut m, xs, _) = trained();
        m.sparsify_models(0.3);
        let p1 = m.predict_one(&xs[0]);
        let p2 = m.predict_one(&xs[0]);
        assert_eq!(p1, p2);
        assert!(p1.is_finite());
    }

    #[test]
    fn keep_everything_is_identity() {
        let (mut m, xs, ys) = trained();
        let before = mse(&m, &xs, &ys);
        let report = m.sparsify_models(1.0);
        assert_eq!(report.zeroed, 0);
        assert_eq!(mse(&m, &xs, &ys), before);
    }

    #[test]
    #[should_panic(expected = "keep_fraction")]
    fn zero_keep_panics() {
        trained().0.sparsify_models(0.0);
    }
}
