//! Model introspection — backing the paper's claim that HD computing
//! "offers an intuitive and human-interpretable model" (§1, point ii).
//!
//! [`RegHdRegressor::diagnostics`] summarises what the trained mixture
//! actually learned: how the input space is partitioned across clusters,
//! how confident the gating is, and how much each regression model has
//! accumulated. Typical uses:
//!
//! * **capacity sizing** — if one cluster absorbs almost everything,
//!   `k` is too large (or the data is uni-modal) and Table 1's smaller-k
//!   configurations will match quality at lower cost;
//! * **gating health** — mean confidence entropy near `ln k` means the
//!   softmax is effectively uniform (β too low or clusters
//!   undifferentiated), near 0 means hard routing;
//! * **saturation monitoring** — model norms growing without bound signal
//!   a learning-rate problem.

use crate::model::RegHdRegressor;
use hdc::similarity::{argmax, softmax};

/// Summary statistics of a trained model over a probe set.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostics {
    /// How many probe inputs route (argmax) to each cluster.
    pub cluster_histogram: Vec<usize>,
    /// Mean Shannon entropy (nats) of the softmax confidences; range
    /// `[0, ln k]`.
    pub mean_confidence_entropy: f32,
    /// Euclidean norm of each regression model hypervector.
    pub model_norms: Vec<f32>,
    /// The learned intercept.
    pub intercept: f32,
}

impl Diagnostics {
    /// Fraction of probes routed to the busiest cluster — 1.0 means the
    /// mixture collapsed to a single expert.
    pub fn max_cluster_share(&self) -> f32 {
        let total: usize = self.cluster_histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        *self.cluster_histogram.iter().max().expect("nonempty") as f32 / total as f32
    }

    /// Number of clusters that received at least one probe.
    pub fn active_clusters(&self) -> usize {
        self.cluster_histogram.iter().filter(|&&c| c > 0).count()
    }
}

impl std::fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "clusters active: {}/{} (busiest holds {:.0}%)",
            self.active_clusters(),
            self.cluster_histogram.len(),
            100.0 * self.max_cluster_share()
        )?;
        writeln!(
            f,
            "mean gating entropy: {:.3} nats (uniform would be {:.3})",
            self.mean_confidence_entropy,
            (self.cluster_histogram.len() as f32).ln()
        )?;
        write!(f, "model norms: ")?;
        for (i, n) in self.model_norms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n:.2}")?;
        }
        write!(f, "; intercept {:.3}", self.intercept)
    }
}

impl RegHdRegressor {
    /// Computes routing and gating statistics over a probe set (typically
    /// the training or validation inputs).
    ///
    /// # Panics
    ///
    /// Panics if `probes` is empty or rows have the wrong feature width.
    pub fn diagnostics(&self, probes: &[Vec<f32>]) -> Diagnostics {
        assert!(!probes.is_empty(), "need at least one probe input");
        let k = self.config().models;
        let mut histogram = vec![0usize; k];
        let mut entropy_sum = 0.0f64;
        for x in probes {
            let q = self.encode_query(x);
            let sims = self.clusters().similarities(&q.real, &q.binary);
            if let Some(l) = argmax(&sims) {
                histogram[l] += 1;
            }
            let conf = softmax(&sims, self.config().softmax_beta);
            entropy_sum += conf
                .iter()
                .filter(|&&c| c > 0.0)
                .map(|&c| -(c as f64) * (c as f64).ln())
                .sum::<f64>();
        }
        let model_norms = self
            .models()
            .integer_models()
            .iter()
            .map(|m| m.norm())
            .collect();
        Diagnostics {
            cluster_histogram: histogram,
            mean_confidence_entropy: (entropy_sum / probes.len() as f64) as f32,
            model_norms,
            intercept: self.intercept(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RegHdConfig;
    use crate::Regressor;
    use encoding::NonlinearEncoder;
    use hdc::rng::HdRng;

    fn multimodal(n: usize) -> (Vec<Vec<f32>>, Vec<f32>) {
        let mut rng = HdRng::seed_from(5);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let c = if rng.next_bool(0.5) { -2.0f32 } else { 2.0 };
            let x = vec![c + 0.2 * rng.next_gaussian() as f32];
            ys.push(if c < 0.0 { 1.0 } else { -1.0 });
            xs.push(x);
        }
        (xs, ys)
    }

    fn trained(k: usize, beta: f32) -> (RegHdRegressor, Vec<Vec<f32>>) {
        let (xs, ys) = multimodal(200);
        let cfg = RegHdConfig::builder()
            .dim(1024)
            .models(k)
            .max_epochs(10)
            .softmax_beta(beta)
            .seed(5)
            .build();
        let mut m = RegHdRegressor::new(cfg, Box::new(NonlinearEncoder::new(1, 1024, 5)));
        m.fit(&xs, &ys);
        (m, xs)
    }

    #[test]
    fn histogram_covers_all_probes() {
        let (m, xs) = trained(4, 8.0);
        let d = m.diagnostics(&xs);
        assert_eq!(d.cluster_histogram.iter().sum::<usize>(), xs.len());
        assert_eq!(d.model_norms.len(), 4);
        assert!(d.active_clusters() >= 1);
    }

    #[test]
    fn two_regimes_use_at_least_two_clusters() {
        let (m, xs) = trained(4, 8.0);
        let d = m.diagnostics(&xs);
        assert!(
            d.active_clusters() >= 2,
            "bimodal input should activate ≥ 2 clusters: {:?}",
            d.cluster_histogram
        );
        assert!(d.max_cluster_share() < 1.0);
    }

    #[test]
    fn entropy_bounded_by_ln_k() {
        let (m, xs) = trained(8, 4.0);
        let d = m.diagnostics(&xs);
        let max_entropy = (8f32).ln();
        assert!(d.mean_confidence_entropy >= 0.0);
        assert!(
            d.mean_confidence_entropy <= max_entropy + 1e-4,
            "{} > ln 8",
            d.mean_confidence_entropy
        );
    }

    #[test]
    fn sharper_beta_lowers_entropy() {
        let (soft, xs) = trained(4, 1.0);
        let (sharp, _) = trained(4, 64.0);
        let e_soft = soft.diagnostics(&xs).mean_confidence_entropy;
        let e_sharp = sharp.diagnostics(&xs).mean_confidence_entropy;
        assert!(
            e_sharp < e_soft,
            "beta=64 entropy {e_sharp} should be below beta=1 entropy {e_soft}"
        );
    }

    #[test]
    fn display_is_informative() {
        let (m, xs) = trained(2, 8.0);
        let text = m.diagnostics(&xs).to_string();
        assert!(text.contains("clusters active"));
        assert!(text.contains("gating entropy"));
        assert!(text.contains("intercept"));
    }

    #[test]
    #[should_panic(expected = "at least one probe")]
    fn empty_probes_panics() {
        let (m, _) = trained(2, 8.0);
        m.diagnostics(&[]);
    }
}
