//! Configuration for RegHD models.
//!
//! [`RegHdConfig`] gathers every hyper-parameter and architectural switch of
//! the paper: hypervector dimensionality `D`, model count `k`, learning rate
//! `α`, softmax sharpness, the iterative-training stopping rule, the cluster
//! quantisation mode (§3.1), the prediction quantisation mode (§3.2), and
//! the model-update rule (see [`UpdateRule`] for the Eq. 7 interpretation
//! note).

/// How cluster hypervectors are stored and searched (paper §3.1, Fig. 5a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ClusterMode {
    /// Full-precision clusters searched with cosine similarity (Eq. 5).
    #[default]
    Integer,
    /// The paper's quantisation framework: binary copies searched with
    /// Hamming distance, integer copies updated, re-binarised each epoch
    /// (Eq. 9).
    FrameworkBinary,
    /// Naive binarisation: the cluster *is* binary and every update is
    /// immediately re-binarised, losing accumulation capacity. Included as
    /// the paper's Figure 6 strawman.
    NaiveBinary,
}

impl ClusterMode {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ClusterMode::Integer => "int-cluster",
            ClusterMode::FrameworkBinary => "bin-cluster",
            ClusterMode::NaiveBinary => "naive-bin-cluster",
        }
    }
}

/// How predictions are computed from query and model (paper §3.2, Fig. 5b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PredictionMode {
    /// Integer query × integer model: full-precision dot product.
    #[default]
    Full,
    /// Binary query × integer model: multiply-free conditional
    /// add/subtract. The paper's preferred quantised configuration
    /// (≈1.5% quality loss).
    BinaryQuery,
    /// Integer query × binary model: multiply-free, ≈5.2% quality loss in
    /// the paper.
    BinaryModel,
    /// Binary query × binary model: pure popcount arithmetic, maximum
    /// efficiency and maximum quality loss.
    BinaryBoth,
}

impl PredictionMode {
    /// Whether the mode binarises the query hypervector.
    pub fn query_is_binary(self) -> bool {
        matches!(
            self,
            PredictionMode::BinaryQuery | PredictionMode::BinaryBoth
        )
    }

    /// Whether the mode binarises the model hypervectors.
    pub fn model_is_binary(self) -> bool {
        matches!(
            self,
            PredictionMode::BinaryModel | PredictionMode::BinaryBoth
        )
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            PredictionMode::Full => "full",
            PredictionMode::BinaryQuery => "bin-query",
            PredictionMode::BinaryModel => "bin-model",
            PredictionMode::BinaryBoth => "bin-both",
        }
    }

    /// All four modes, in the order Figure 7 reports them.
    pub const ALL: [PredictionMode; 4] = [
        PredictionMode::Full,
        PredictionMode::BinaryQuery,
        PredictionMode::BinaryModel,
        PredictionMode::BinaryBoth,
    ];
}

/// How the `k` regression models incorporate the shared prediction error.
///
/// The paper's Eq. 7 prints `M_i ← M_i + α(y − ŷ)S` for every `i`, but the
/// surrounding text and Fig. 4 describe confidence-weighted behaviour; an
/// unweighted update applied to *all* models would make every model
/// identical, collapsing the mixture. We therefore default to weighting the
/// update by each model's confidence `δ′_i` and keep the other readings as
/// ablations (`--bin ablation` in the bench crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum UpdateRule {
    /// `M_i ← M_i + α·δ′_i·(y − ŷ)·S` — mixture-of-experts style; our
    /// default reading of Eq. 7.
    #[default]
    ConfidenceWeighted,
    /// Eq. 7 exactly as printed: every model receives the full unweighted
    /// update.
    SharedError,
    /// Only the argmax-similarity model updates (hard clustering).
    ArgmaxOnly,
}

impl UpdateRule {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            UpdateRule::ConfidenceWeighted => "conf-weighted",
            UpdateRule::SharedError => "shared-error",
            UpdateRule::ArgmaxOnly => "argmax-only",
        }
    }
}

/// Complete RegHD hyper-parameter set.
///
/// Construct with [`RegHdConfig::builder`]; the defaults reproduce the
/// paper's main configuration (`D = 4096`, `k = 8`, full precision).
///
/// # Examples
///
/// ```
/// use reghd::config::{RegHdConfig, ClusterMode, PredictionMode};
///
/// let cfg = RegHdConfig::builder()
///     .dim(2048)
///     .models(8)
///     .cluster_mode(ClusterMode::FrameworkBinary)
///     .prediction_mode(PredictionMode::BinaryQuery)
///     .build();
/// assert_eq!(cfg.dim, 2048);
/// assert_eq!(cfg.models, 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RegHdConfig {
    /// Hypervector dimensionality `D`.
    pub dim: usize,
    /// Number of cluster/model pairs `k` (1 = single-model regression).
    pub models: usize,
    /// Learning rate `α` of Eq. 2 / Eq. 7.
    pub learning_rate: f32,
    /// Maximum training epochs.
    pub max_epochs: usize,
    /// Minimum epochs before the stopping rule may fire.
    pub min_epochs: usize,
    /// Relative train-MSE improvement below which an epoch counts as
    /// "minor change" for the stopping rule.
    pub convergence_tol: f32,
    /// Number of consecutive minor-change epochs required to stop.
    pub patience: usize,
    /// Softmax inverse temperature β for confidence normalisation.
    pub softmax_beta: f32,
    /// How many training samples are processed between re-binarisations of
    /// the quantised model copies (§3.2: "after going through all training
    /// data **(or a batch)**, RegHD binarizes the model"). Training-time
    /// predictions in the binary-model modes read the binary copies, so
    /// refreshing them per batch keeps the error feedback loop live; a
    /// whole-epoch refresh would let the integer models over-accumulate
    /// against a stale prediction and diverge.
    pub quantize_batch: usize,
    /// Cluster storage/search mode (§3.1).
    pub cluster_mode: ClusterMode,
    /// Prediction quantisation mode (§3.2).
    pub prediction_mode: PredictionMode,
    /// Model-update rule (Eq. 7 interpretation).
    pub update_rule: UpdateRule,
    /// Whether encoded hypervectors are scaled to unit norm before use.
    /// Keeps the effective learning rate independent of `D` and of the
    /// encoder's output scale.
    pub normalize_encodings: bool,
    /// Whether encodings are mean-centred using the training-set mean
    /// encoding. Eq. 1 expands to `½·sin(2f·B+b) − ½·sin(b)`, whose second
    /// term is an input-independent bias shared by every encoding; centring
    /// removes that dominant shared direction, which dramatically improves
    /// the conditioning of the delta-rule updates.
    pub center_encodings: bool,
    /// Whether a scalar intercept is learned alongside the hypervector
    /// models (useful when targets are not pre-centred).
    pub intercept: bool,
    /// Seed for cluster initialisation and epoch shuffling.
    pub seed: u64,
}

impl Default for RegHdConfig {
    fn default() -> Self {
        Self {
            dim: 4096,
            models: 8,
            learning_rate: 0.3,
            max_epochs: 40,
            min_epochs: 5,
            convergence_tol: 1e-3,
            patience: 3,
            softmax_beta: 8.0,
            quantize_batch: 64,
            cluster_mode: ClusterMode::Integer,
            prediction_mode: PredictionMode::Full,
            update_rule: UpdateRule::ConfidenceWeighted,
            normalize_encodings: true,
            center_encodings: true,
            intercept: true,
            seed: 0,
        }
    }
}

impl RegHdConfig {
    /// Starts a builder initialised with the defaults.
    pub fn builder() -> RegHdConfigBuilder {
        RegHdConfigBuilder {
            cfg: Self::default(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field, if any.
    pub fn validate(&self) -> Result<(), String> {
        if self.dim == 0 {
            return Err("dim must be nonzero".into());
        }
        if self.models == 0 {
            return Err("models must be nonzero".into());
        }
        if !(self.learning_rate > 0.0 && self.learning_rate.is_finite()) {
            return Err("learning_rate must be positive and finite".into());
        }
        if self.max_epochs == 0 {
            return Err("max_epochs must be nonzero".into());
        }
        if !(self.convergence_tol >= 0.0 && self.convergence_tol.is_finite()) {
            return Err("convergence_tol must be nonnegative and finite".into());
        }
        if !(self.softmax_beta > 0.0 && self.softmax_beta.is_finite()) {
            return Err("softmax_beta must be positive and finite".into());
        }
        if self.quantize_batch == 0 {
            return Err("quantize_batch must be nonzero".into());
        }
        Ok(())
    }
}

/// Builder for [`RegHdConfig`].
#[derive(Debug, Clone)]
pub struct RegHdConfigBuilder {
    cfg: RegHdConfig,
}

impl RegHdConfigBuilder {
    /// Sets the hypervector dimensionality `D`.
    pub fn dim(mut self, dim: usize) -> Self {
        self.cfg.dim = dim;
        self
    }

    /// Sets the number of cluster/model pairs `k`.
    pub fn models(mut self, models: usize) -> Self {
        self.cfg.models = models;
        self
    }

    /// Sets the learning rate `α`.
    pub fn learning_rate(mut self, lr: f32) -> Self {
        self.cfg.learning_rate = lr;
        self
    }

    /// Sets the maximum number of training epochs.
    pub fn max_epochs(mut self, e: usize) -> Self {
        self.cfg.max_epochs = e;
        self
    }

    /// Sets the minimum number of epochs before early stopping may fire.
    pub fn min_epochs(mut self, e: usize) -> Self {
        self.cfg.min_epochs = e;
        self
    }

    /// Sets the convergence tolerance of the stopping rule.
    pub fn convergence_tol(mut self, tol: f32) -> Self {
        self.cfg.convergence_tol = tol;
        self
    }

    /// Sets the patience of the stopping rule.
    pub fn patience(mut self, p: usize) -> Self {
        self.cfg.patience = p;
        self
    }

    /// Sets the softmax inverse temperature β.
    pub fn softmax_beta(mut self, b: f32) -> Self {
        self.cfg.softmax_beta = b;
        self
    }

    /// Sets the re-binarisation batch size for quantised training.
    pub fn quantize_batch(mut self, b: usize) -> Self {
        self.cfg.quantize_batch = b;
        self
    }

    /// Sets the cluster quantisation mode.
    pub fn cluster_mode(mut self, m: ClusterMode) -> Self {
        self.cfg.cluster_mode = m;
        self
    }

    /// Sets the prediction quantisation mode.
    pub fn prediction_mode(mut self, m: PredictionMode) -> Self {
        self.cfg.prediction_mode = m;
        self
    }

    /// Sets the model-update rule.
    pub fn update_rule(mut self, r: UpdateRule) -> Self {
        self.cfg.update_rule = r;
        self
    }

    /// Sets whether encodings are normalised to unit norm.
    pub fn normalize_encodings(mut self, on: bool) -> Self {
        self.cfg.normalize_encodings = on;
        self
    }

    /// Sets whether encodings are mean-centred with the training-set mean.
    pub fn center_encodings(mut self, on: bool) -> Self {
        self.cfg.center_encodings = on;
        self
    }

    /// Sets whether a scalar intercept is learned.
    pub fn intercept(mut self, on: bool) -> Self {
        self.cfg.intercept = on;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.cfg.seed = s;
        self
    }

    /// Finalises the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; see [`RegHdConfig::validate`]
    /// for the checked constraints.
    pub fn build(self) -> RegHdConfig {
        if let Err(e) = self.cfg.validate() {
            panic!("invalid RegHdConfig: {e}");
        }
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(RegHdConfig::default().validate().is_ok());
    }

    #[test]
    fn builder_sets_fields() {
        let cfg = RegHdConfig::builder()
            .dim(512)
            .models(32)
            .learning_rate(0.1)
            .max_epochs(5)
            .convergence_tol(0.01)
            .patience(2)
            .softmax_beta(4.0)
            .cluster_mode(ClusterMode::NaiveBinary)
            .prediction_mode(PredictionMode::BinaryBoth)
            .update_rule(UpdateRule::ArgmaxOnly)
            .normalize_encodings(false)
            .intercept(false)
            .seed(99)
            .build();
        assert_eq!(cfg.dim, 512);
        assert_eq!(cfg.models, 32);
        assert_eq!(cfg.learning_rate, 0.1);
        assert_eq!(cfg.max_epochs, 5);
        assert_eq!(cfg.patience, 2);
        assert_eq!(cfg.cluster_mode, ClusterMode::NaiveBinary);
        assert_eq!(cfg.prediction_mode, PredictionMode::BinaryBoth);
        assert_eq!(cfg.update_rule, UpdateRule::ArgmaxOnly);
        assert!(!cfg.normalize_encodings);
        assert!(!cfg.intercept);
        assert_eq!(cfg.seed, 99);
    }

    #[test]
    #[should_panic(expected = "dim must be nonzero")]
    fn zero_dim_panics() {
        RegHdConfig::builder().dim(0).build();
    }

    #[test]
    #[should_panic(expected = "models must be nonzero")]
    fn zero_models_panics() {
        RegHdConfig::builder().models(0).build();
    }

    #[test]
    fn validate_reports_bad_lr() {
        let mut cfg = RegHdConfig {
            learning_rate: -1.0,
            ..RegHdConfig::default()
        };
        assert!(cfg.validate().is_err());
        cfg.learning_rate = f32::NAN;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn prediction_mode_flags() {
        assert!(!PredictionMode::Full.query_is_binary());
        assert!(!PredictionMode::Full.model_is_binary());
        assert!(PredictionMode::BinaryQuery.query_is_binary());
        assert!(!PredictionMode::BinaryQuery.model_is_binary());
        assert!(!PredictionMode::BinaryModel.query_is_binary());
        assert!(PredictionMode::BinaryModel.model_is_binary());
        assert!(PredictionMode::BinaryBoth.query_is_binary());
        assert!(PredictionMode::BinaryBoth.model_is_binary());
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<&str> = PredictionMode::ALL.iter().map(|m| m.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
