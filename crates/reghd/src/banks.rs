//! Cluster and model hypervector banks, including the quantisation
//! framework of paper §3.
//!
//! * [`ClusterBank`] owns the `k` cluster hypervectors (`C_i`), performs the
//!   similarity search in the configured [`ClusterMode`], applies the
//!   saturation-aware update of Eq. 8/9, and re-binarises at epoch
//!   boundaries when running the §3.1 framework.
//! * [`ModelBank`] owns the `k` regression model hypervectors (`M_i`),
//!   computes per-model prediction scores in the configured
//!   [`PredictionMode`], always applies updates to the integer copies
//!   (§3.2: "the precision of the model update has an important impact on
//!   RegHD convergence"), and refreshes the binary copies each epoch.
//!
//! ### Binarisation scale factors
//!
//! The paper's binary prediction modes drop all magnitude information from
//! the binarised operand. To keep the predicted scalar on the target scale
//! we attach one scalar amplitude per binarised hypervector — the mean
//! absolute component value, the standard XNOR-Net-style scale factor. This
//! is one extra multiply per (model × query), preserving the modes'
//! multiply-free inner loops; `DESIGN.md` records it as an implementation
//! interpretation.

use crate::config::{ClusterMode, PredictionMode};
use hdc::rng::HdRng;
use hdc::similarity::{cosine, hamming_similarity};
use hdc::{BinaryHv, BipolarHv, RealHv};

/// Mean absolute component value — the scalar amplitude paired with a
/// binarised hypervector.
fn amplitude(hv: &RealHv) -> f32 {
    if hv.is_empty() {
        return 0.0;
    }
    (hv.as_slice().iter().map(|&v| v.abs() as f64).sum::<f64>() / hv.dim() as f64) as f32
}

/// The `k` cluster hypervectors with quantisation support (§3.1).
#[derive(Debug, Clone)]
pub struct ClusterBank {
    mode: ClusterMode,
    /// Integer (full-precision) cluster copies `C_i`. In `NaiveBinary` mode
    /// this holds the ±1 view of the binary state instead of an accumulator.
    int: Vec<RealHv>,
    /// Binary copies `C_i^b` (empty in `Integer` mode).
    bin: Vec<BinaryHv>,
}

impl ClusterBank {
    /// Creates `k` cluster hypervectors initialised to random binary values
    /// (paper §2.4: "cluster hypervectors are initialized to random binary
    /// values").
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `dim == 0`.
    pub fn new(k: usize, dim: usize, mode: ClusterMode, rng: &mut HdRng) -> Self {
        assert!(k > 0, "cluster count must be nonzero");
        assert!(dim > 0, "dim must be nonzero");
        let int: Vec<RealHv> = (0..k)
            .map(|_| BipolarHv::random(dim, rng).to_real())
            .collect();
        let bin = int.iter().map(RealHv::binarize).collect();
        Self { mode, int, bin }
    }

    /// Rebuilds a bank from persisted integer clusters; the binary copies
    /// are re-derived by binarisation.
    ///
    /// # Panics
    ///
    /// Panics if `int` is empty or the clusters disagree in width.
    pub fn from_parts(mode: ClusterMode, int: Vec<RealHv>) -> Self {
        assert!(!int.is_empty(), "cluster count must be nonzero");
        let dim = int[0].dim();
        assert!(
            int.iter().all(|c| c.dim() == dim),
            "clusters must share a dimensionality"
        );
        let bin = int.iter().map(RealHv::binarize).collect();
        Self { mode, int, bin }
    }

    /// Number of clusters `k`.
    pub fn len(&self) -> usize {
        self.int.len()
    }

    /// Whether the bank is empty (never true for a constructed bank).
    pub fn is_empty(&self) -> bool {
        self.int.is_empty()
    }

    /// The quantisation mode.
    pub fn mode(&self) -> ClusterMode {
        self.mode
    }

    /// The integer cluster copies.
    pub fn integer_clusters(&self) -> &[RealHv] {
        &self.int
    }

    /// The binary cluster copies (empty in `Integer` mode semantics, but
    /// kept in sync for inspection).
    pub fn binary_clusters(&self) -> &[BinaryHv] {
        &self.bin
    }

    /// Similarity of an encoded point to every cluster, in the bank's mode:
    /// cosine over integer clusters, or Hamming similarity over binary
    /// clusters (Eq. 5 vs §3.1).
    pub fn similarities(&self, s: &RealHv, s_bin: &BinaryHv) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.int.len());
        self.similarities_into(s, s_bin, &mut out);
        out
    }

    /// Allocation-free variant of [`ClusterBank::similarities`]: clears
    /// `out` and fills it with one similarity per cluster. Batched
    /// prediction reuses one buffer across rows.
    pub fn similarities_into(&self, s: &RealHv, s_bin: &BinaryHv, out: &mut Vec<f32>) {
        out.clear();
        match self.mode {
            ClusterMode::Integer => out.extend(self.int.iter().map(|c| cosine(s, c))),
            ClusterMode::FrameworkBinary | ClusterMode::NaiveBinary => {
                self.binary_similarities_into(s_bin, out)
            }
        }
    }

    /// Hamming similarity of a binarised query to every **binary** cluster
    /// copy, regardless of the bank's mode — the cluster search of the
    /// bit-packed inference tier. The binary copies are kept coherent with
    /// the integer ones at every [`ClusterBank::end_epoch`] (all modes), so
    /// the tier can use them even on an `Integer`-mode bank.
    pub fn binary_similarities_into(&self, s_bin: &BinaryHv, out: &mut Vec<f32>) {
        out.clear();
        out.extend(self.bin.iter().map(|c| hamming_similarity(s_bin, c)));
    }

    /// Applies the saturation-aware cluster update of Eq. 8/9 to cluster
    /// `l`: `C_l ← C_l + (1 − δ_l) · S`.
    ///
    /// * `Integer`/`FrameworkBinary`: the integer copy accumulates; the
    ///   binary copy is refreshed lazily at [`ClusterBank::end_epoch`].
    /// * `NaiveBinary`: the update is applied to the ±1 view and
    ///   immediately re-binarised, discarding accumulation history — the
    ///   Figure 6 strawman showing why the two-copy framework is needed.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range or dimensions mismatch.
    pub fn update(&mut self, l: usize, delta_l: f32, s: &RealHv) {
        let weight = 1.0 - delta_l;
        match self.mode {
            ClusterMode::Integer | ClusterMode::FrameworkBinary => {
                self.int[l].add_scaled(s, weight);
            }
            ClusterMode::NaiveBinary => {
                // Binary state → ±1 view, single update, immediate
                // re-binarisation. Magnitude history is lost by design.
                let mut view = self.bin[l].to_real_signed();
                view.add_scaled(s, weight);
                self.bin[l] = view.binarize();
                self.int[l] = self.bin[l].to_real_signed();
            }
        }
    }

    /// Re-initialises cluster `l` to fresh random binary values — the same
    /// initialisation a newly constructed bank uses (§2.4). Streaming
    /// trainers call this on concept drift to evict a cluster whose region
    /// of input space no longer exists; the next samples that land nearest
    /// to the fresh random vector re-grow it under the new concept.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn reset(&mut self, l: usize, rng: &mut HdRng) {
        let dim = self.int[l].dim();
        self.int[l] = BipolarHv::random(dim, rng).to_real();
        self.bin[l] = self.int[l].binarize();
    }

    /// Epoch boundary: re-quantise binary copies from the integer copies
    /// (the single-comparison binarisation step of Fig. 5a).
    pub fn end_epoch(&mut self) {
        if self.mode == ClusterMode::FrameworkBinary {
            for (b, c) in self.bin.iter_mut().zip(&self.int) {
                *b = c.binarize();
            }
        } else if self.mode == ClusterMode::Integer {
            // Keep the inspection copies coherent.
            for (b, c) in self.bin.iter_mut().zip(&self.int) {
                *b = c.binarize();
            }
        }
    }
}

/// The `k` regression model hypervectors with quantised prediction support
/// (§3.2).
#[derive(Debug, Clone)]
pub struct ModelBank {
    mode: PredictionMode,
    /// Integer models `M_i` — always the update target.
    int: Vec<RealHv>,
    /// Binary models `M_i^b` (refreshed per epoch when the mode needs them).
    bin: Vec<BinaryHv>,
    /// Scalar amplitudes paired with the binary models.
    amps: Vec<f32>,
}

impl ModelBank {
    /// Creates `k` zero-initialised model hypervectors (paper §2.4: "model
    /// hypervectors are initialized as zero hypervectors").
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `dim == 0`.
    pub fn new(k: usize, dim: usize, mode: PredictionMode) -> Self {
        assert!(k > 0, "model count must be nonzero");
        assert!(dim > 0, "dim must be nonzero");
        Self {
            mode,
            int: vec![RealHv::zeros(dim); k],
            bin: vec![BinaryHv::zeros(dim); k],
            amps: vec![0.0; k],
        }
    }

    /// Rebuilds a bank from persisted integer models; binary copies and
    /// amplitudes are re-derived.
    ///
    /// # Panics
    ///
    /// Panics if `int` is empty or the models disagree in width.
    pub fn from_parts(mode: PredictionMode, int: Vec<RealHv>) -> Self {
        assert!(!int.is_empty(), "model count must be nonzero");
        let dim = int[0].dim();
        assert!(
            int.iter().all(|m| m.dim() == dim),
            "models must share a dimensionality"
        );
        let mut bank = Self {
            mode,
            bin: vec![BinaryHv::zeros(dim); int.len()],
            amps: vec![0.0; int.len()],
            int,
        };
        // Populate binary copies/amps regardless of mode so inspection is
        // coherent; prediction only reads them in the binary modes.
        for ((b, a), m) in bank.bin.iter_mut().zip(&mut bank.amps).zip(&bank.int) {
            *b = m.binarize();
            *a = if m.is_empty() {
                0.0
            } else {
                (m.as_slice().iter().map(|&v| v.abs() as f64).sum::<f64>() / m.dim() as f64) as f32
            };
        }
        bank
    }

    /// Number of models `k`.
    pub fn len(&self) -> usize {
        self.int.len()
    }

    /// Whether the bank is empty (never true for a constructed bank).
    pub fn is_empty(&self) -> bool {
        self.int.is_empty()
    }

    /// The prediction mode.
    pub fn mode(&self) -> PredictionMode {
        self.mode
    }

    /// The integer model copies.
    pub fn integer_models(&self) -> &[RealHv] {
        &self.int
    }

    /// Per-model raw prediction scores `M_i ⋅ S` in the bank's mode.
    ///
    /// `s`/`s_bin` are the integer and binary encodings of the query and
    /// `s_amp` the query's scalar amplitude (mean |component|), used by the
    /// binary-query modes.
    pub fn scores(&self, s: &RealHv, s_bin: &BinaryHv, s_amp: f32) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.int.len());
        self.scores_into(s, s_bin, s_amp, &mut out);
        out
    }

    /// Allocation-free variant of [`ModelBank::scores`]: clears `out` and
    /// fills it with one raw score per model. Batched prediction reuses one
    /// buffer across rows.
    pub fn scores_into(&self, s: &RealHv, s_bin: &BinaryHv, s_amp: f32, out: &mut Vec<f32>) {
        self.scores_into_mode(self.mode, s, s_bin, s_amp, out);
    }

    /// Like [`ModelBank::scores_into`] but in an explicit mode rather than
    /// the bank's configured one. The serving layer uses this to force the
    /// multiply-free `BinaryQuery` path (§3.2) as a degraded fallback
    /// regardless of how the model was trained. Note that the binary model
    /// copies are refreshed per epoch only in the binary-model modes, so
    /// forcing `BinaryModel`/`BinaryBoth` on a bank built in another mode
    /// reads copies derived at construction ([`ModelBank::from_parts`]).
    pub fn scores_into_mode(
        &self,
        mode: PredictionMode,
        s: &RealHv,
        s_bin: &BinaryHv,
        s_amp: f32,
        out: &mut Vec<f32>,
    ) {
        out.clear();
        match mode {
            PredictionMode::Full => out.extend(self.int.iter().map(|m| m.dot(s))),
            PredictionMode::BinaryQuery => {
                out.extend(self.int.iter().map(|m| s_amp * s_bin.signed_dot(m)))
            }
            PredictionMode::BinaryModel => out.extend(
                self.bin
                    .iter()
                    .zip(&self.amps)
                    .map(|(mb, &a)| a * mb.signed_dot(s)),
            ),
            PredictionMode::BinaryBoth => self.binary_scores_into(s_bin, s_amp, out),
        }
    }

    /// The binary-binary (§3.2 `BinaryBoth`) scores against the **binary**
    /// model copies, regardless of the bank's mode — the scoring loop of the
    /// bit-packed inference tier: XOR + popcount per model plus one multiply
    /// by the paired amplitudes.
    ///
    /// On banks whose mode never refreshes the binary copies during
    /// training, callers must force coherence first (see
    /// [`ModelBank::end_epoch_forced`]); `RegHdRegressor` does this at the
    /// end of every fit.
    pub fn binary_scores_into(&self, s_bin: &BinaryHv, s_amp: f32, out: &mut Vec<f32>) {
        out.clear();
        out.extend(self.bin.iter().zip(&self.amps).map(|(mb, &a)| {
            // ±1 · ±1 dot = D − 2·hamming: XOR + popcount only.
            let dim = mb.dim() as i64;
            let ham = hdc::similarity::hamming_distance(mb, s_bin) as i64;
            a * s_amp * (dim - 2 * ham) as f32
        }))
    }

    /// Applies the model update `M_i ← M_i + delta · S` to the integer copy
    /// (always full precision, per §3.2).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or dimensions mismatch.
    pub fn update(&mut self, i: usize, delta: f32, s: &RealHv) {
        self.int[i].add_scaled(s, delta);
    }

    /// Re-initialises model `i` to the zero hypervector — the same state a
    /// newly constructed bank starts from (§2.4). Paired with
    /// [`ClusterBank::reset`] when a streaming trainer evicts a stale
    /// cluster/model pair on concept drift.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn reset(&mut self, i: usize) {
        let dim = self.int[i].dim();
        self.int[i] = RealHv::zeros(dim);
        self.bin[i] = BinaryHv::zeros(dim);
        self.amps[i] = 0.0;
    }

    /// Epoch boundary: refresh binary copies and amplitudes from the
    /// integer models (the binarisation step of Fig. 5b).
    pub fn end_epoch(&mut self) {
        if self.mode.model_is_binary() {
            self.end_epoch_forced();
        }
    }

    /// Refreshes binary copies and amplitudes unconditionally (used after
    /// out-of-band model edits such as sparsification).
    pub fn end_epoch_forced(&mut self) {
        for ((b, a), m) in self.bin.iter_mut().zip(&mut self.amps).zip(&self.int) {
            *b = m.binarize();
            *a = amplitude(m);
        }
    }

    /// Mutable access to one integer model (for out-of-band edits like
    /// sparsification); call [`ModelBank::end_epoch_forced`] afterwards so
    /// the binary copies stay coherent.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn integer_model_mut(&mut self, i: usize) -> &mut RealHv {
        &mut self.int[i]
    }
}

/// Query-side encoding bundle: integer form, binary form, and scalar
/// amplitude, produced once per sample and consumed by both banks.
#[derive(Debug, Clone)]
pub struct EncodedQuery {
    /// Full-precision encoding `S` (normalised if the config says so).
    pub real: RealHv,
    /// Sign-binarised encoding `S^b`.
    pub binary: BinaryHv,
    /// Mean absolute component value of `real`.
    pub amp: f32,
}

impl EncodedQuery {
    /// Builds the bundle from a real encoding.
    pub fn new(real: RealHv) -> Self {
        let binary = real.binarize();
        let amp = amplitude(&real);
        Self { real, binary, amp }
    }

    /// Builds the bundle from a real encoding and a binary form produced
    /// alongside it (the fused `Encoder::encode_both` path). The caller
    /// guarantees `binary` is the sign-binarisation of `real`; only the
    /// amplitude is computed here.
    pub fn from_parts(real: RealHv, binary: BinaryHv) -> Self {
        let amp = amplitude(&real);
        Self { real, binary, amp }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::similarity::argmax;

    fn rng() -> HdRng {
        HdRng::seed_from(11)
    }

    #[test]
    fn cluster_bank_initialises_randomly() {
        let mut r = rng();
        let bank = ClusterBank::new(4, 512, ClusterMode::Integer, &mut r);
        assert_eq!(bank.len(), 4);
        // Random ±1 init: clusters pairwise nearly orthogonal.
        let c = bank.integer_clusters();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(cosine(&c[i], &c[j]).abs() < 0.2);
            }
        }
    }

    #[test]
    fn integer_similarities_are_cosine() {
        let mut r = rng();
        let bank = ClusterBank::new(3, 256, ClusterMode::Integer, &mut r);
        let q = EncodedQuery::new(bank.integer_clusters()[1].clone());
        let sims = bank.similarities(&q.real, &q.binary);
        assert_eq!(argmax(&sims), Some(1));
        assert!((sims[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn binary_similarities_are_hamming() {
        let mut r = rng();
        let bank = ClusterBank::new(3, 256, ClusterMode::FrameworkBinary, &mut r);
        let q = EncodedQuery::new(bank.integer_clusters()[2].clone());
        let sims = bank.similarities(&q.real, &q.binary);
        assert_eq!(argmax(&sims), Some(2));
        assert!((sims[2] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn framework_update_accumulates_then_rebinarizes() {
        let mut r = rng();
        let mut bank = ClusterBank::new(2, 128, ClusterMode::FrameworkBinary, &mut r);
        let before_bin = bank.binary_clusters()[0].clone();
        let s = EncodedQuery::new(BipolarHv::random(128, &mut r).to_real());
        // Low similarity → near-full-weight update on the integer copy.
        bank.update(0, 0.0, &s.real);
        // Binary copy unchanged until the epoch boundary.
        assert_eq!(bank.binary_clusters()[0], before_bin);
        bank.end_epoch();
        // After several aligned updates the binary copy must drift toward s.
        for _ in 0..5 {
            bank.update(0, 0.0, &s.real);
        }
        bank.end_epoch();
        let sim = hamming_similarity(&bank.binary_clusters()[0], &s.binary);
        assert!(sim > 0.8, "sim = {sim}");
    }

    #[test]
    fn naive_update_saturates() {
        // The §3.1 argument: naive binarisation cannot accumulate. A small
        // repeated update that would win out over epochs in the framework
        // mode is erased every step in naive mode.
        let mut r = rng();
        let mut naive = ClusterBank::new(1, 4096, ClusterMode::NaiveBinary, &mut r);
        let mut fw_rng = HdRng::seed_from(11);
        let mut framework2 = ClusterBank::new(1, 4096, ClusterMode::FrameworkBinary, &mut fw_rng);
        let s = EncodedQuery::new(BipolarHv::random(4096, &mut r).to_real());
        // Weight 0.4 < 1: never enough to flip a ±1 component in one step
        // for the naive bank, but accumulates in the framework bank.
        for _ in 0..10 {
            naive.update(0, 0.6, &s.real);
            framework2.update(0, 0.6, &s.real);
            naive.end_epoch();
            framework2.end_epoch();
        }
        let naive_sim = hamming_similarity(&naive.binary_clusters()[0], &s.binary);
        let fw_sim = hamming_similarity(&framework2.binary_clusters()[0], &s.binary);
        assert!(
            fw_sim > naive_sim + 0.3,
            "framework {fw_sim} should beat naive {naive_sim}"
        );
    }

    #[test]
    fn high_similarity_damps_cluster_update() {
        // Eq. 8's (1 − δ) factor: an already-matching input barely moves
        // the cluster.
        let mut r = rng();
        let mut bank = ClusterBank::new(1, 256, ClusterMode::Integer, &mut r);
        let before = bank.integer_clusters()[0].clone();
        let s = EncodedQuery::new(before.clone());
        bank.update(0, 0.99, &s.real);
        let after = &bank.integer_clusters()[0];
        let drift = hdc::similarity::squared_euclidean(&before, after);
        assert!(drift < 0.05 * before.dim() as f32);
    }

    #[test]
    fn model_bank_starts_at_zero() {
        let bank = ModelBank::new(3, 128, PredictionMode::Full);
        let q = EncodedQuery::new(RealHv::from_vec(vec![1.0; 128]));
        assert!(bank
            .scores(&q.real, &q.binary, q.amp)
            .iter()
            .all(|&s| s == 0.0));
    }

    #[test]
    fn full_scores_are_dots() {
        let mut bank = ModelBank::new(2, 64, PredictionMode::Full);
        let s = EncodedQuery::new(RealHv::from_vec(vec![0.5; 64]));
        bank.update(0, 1.0, &s.real);
        let scores = bank.scores(&s.real, &s.binary, s.amp);
        assert!((scores[0] - 64.0 * 0.25).abs() < 1e-3);
        assert_eq!(scores[1], 0.0);
    }

    #[test]
    fn binary_model_scores_track_full_after_end_epoch() {
        // With a rich enough model the binarised score should correlate
        // strongly with the full-precision score.
        let mut r = rng();
        let mut full = ModelBank::new(1, 2048, PredictionMode::Full);
        let mut binm = ModelBank::new(1, 2048, PredictionMode::BinaryModel);
        // Accumulate a few random updates into both.
        for _ in 0..10 {
            let u = EncodedQuery::new(BipolarHv::random(2048, &mut r).to_real());
            full.update(0, 0.7, &u.real);
            binm.update(0, 0.7, &u.real);
        }
        full.end_epoch();
        binm.end_epoch();
        let q = EncodedQuery::new(BipolarHv::random(2048, &mut r).to_real());
        let f = full.scores(&q.real, &q.binary, q.amp)[0];
        let b = binm.scores(&q.real, &q.binary, q.amp)[0];
        // Same order of magnitude and same sign tendency.
        assert!(
            (f - b).abs() < 0.5 * f.abs().max(b.abs()).max(10.0),
            "full {f} vs binary-model {b}"
        );
    }

    #[test]
    fn binary_both_uses_popcount_identity() {
        let mut bank = ModelBank::new(1, 128, PredictionMode::BinaryBoth);
        let s = EncodedQuery::new(RealHv::from_vec(vec![1.0; 128]));
        bank.update(0, 1.0, &s.real);
        bank.end_epoch();
        // Model binarises to all-ones; query binary is all-ones; dot should
        // be amp_model · amp_query · D.
        let score = bank.scores(&s.real, &s.binary, s.amp)[0];
        assert!((score - 1.0 * 1.0 * 128.0).abs() < 1e-3, "score = {score}");
    }

    #[test]
    fn amplitude_is_mean_abs() {
        assert_eq!(amplitude(&RealHv::from_vec(vec![1.0, -3.0])), 2.0);
        assert_eq!(amplitude(&RealHv::zeros(0)), 0.0);
    }

    #[test]
    fn encoded_query_bundles_consistently() {
        let v = RealHv::from_vec(vec![0.5, -0.5, 2.0]);
        let q = EncodedQuery::new(v.clone());
        assert_eq!(q.binary, v.binarize());
        assert!((q.amp - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "cluster count must be nonzero")]
    fn zero_clusters_panics() {
        ClusterBank::new(0, 16, ClusterMode::Integer, &mut rng());
    }

    #[test]
    #[should_panic(expected = "model count must be nonzero")]
    fn zero_models_panics() {
        ModelBank::new(0, 16, PredictionMode::Full);
    }
}
