//! The [`Regressor`] interface shared by RegHD and every comparator in the
//! `baselines` crate, plus the [`FitReport`] returned by training.

/// Outcome of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct FitReport {
    /// Number of epochs actually run.
    pub epochs: usize,
    /// Training-set MSE measured after each epoch (drives the Figure 3a
    /// reproduction).
    pub train_mse_history: Vec<f32>,
    /// Whether the stopping rule fired before `max_epochs`.
    pub converged: bool,
}

impl FitReport {
    /// The final training MSE, if at least one epoch ran.
    pub fn final_mse(&self) -> Option<f32> {
        self.train_mse_history.last().copied()
    }
}

/// A trainable regression model over raw feature vectors.
///
/// All learners in this workspace — RegHD variants and the Table 1
/// baselines — implement this trait, which is what lets the bench harness
/// sweep them uniformly. The trait is object-safe.
pub trait Regressor {
    /// Trains on the given samples, replacing any previous state.
    ///
    /// # Panics
    ///
    /// Implementations panic if `features.len() != targets.len()`, the
    /// inputs are empty, or rows do not match the model's expected feature
    /// width.
    fn fit(&mut self, features: &[Vec<f32>], targets: &[f32]) -> FitReport;

    /// Predicts the target for a single feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not match the expected feature width.
    fn predict_one(&self, x: &[f32]) -> f32;

    /// Predicts targets for a batch of feature vectors.
    ///
    /// The default implementation loops over [`Regressor::predict_one`];
    /// implementations with a cheaper amortised path (shared scratch
    /// buffers, one encoding pass) should override this. Serving code
    /// (`reghd-serve`) funnels coalesced micro-batches through here.
    fn predict_batch(&self, xs: &[Vec<f32>]) -> Vec<f32> {
        xs.iter().map(|x| self.predict_one(x)).collect()
    }

    /// Predicts targets for a batch of feature vectors. Alias for
    /// [`Regressor::predict_batch`], kept for the bench harness's
    /// historical call sites.
    fn predict(&self, features: &[Vec<f32>]) -> Vec<f32> {
        self.predict_batch(features)
    }

    /// Human-readable model name used in reports.
    fn name(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct MeanModel {
        mean: f32,
    }

    impl Regressor for MeanModel {
        fn fit(&mut self, features: &[Vec<f32>], targets: &[f32]) -> FitReport {
            assert_eq!(features.len(), targets.len());
            self.mean = targets.iter().sum::<f32>() / targets.len() as f32;
            FitReport {
                epochs: 1,
                train_mse_history: vec![0.0],
                converged: true,
            }
        }

        fn predict_one(&self, _x: &[f32]) -> f32 {
            self.mean
        }

        fn name(&self) -> String {
            "mean".into()
        }
    }

    #[test]
    fn default_batch_predict_delegates() {
        let mut m = MeanModel { mean: 0.0 };
        m.fit(&[vec![1.0], vec![2.0]], &[10.0, 20.0]);
        assert_eq!(m.predict(&[vec![0.0], vec![9.0]]), vec![15.0, 15.0]);
        assert_eq!(m.predict_batch(&[vec![0.0], vec![9.0]]), vec![15.0, 15.0]);
        assert!(m.predict_batch(&[]).is_empty());
    }

    #[test]
    fn predict_batch_is_object_safe() {
        let m: Box<dyn Regressor> = Box::new(MeanModel { mean: 3.0 });
        assert_eq!(m.predict_batch(&[vec![1.0], vec![2.0]]), vec![3.0, 3.0]);
    }

    #[test]
    fn trait_is_object_safe() {
        let m: Box<dyn Regressor> = Box::new(MeanModel { mean: 1.0 });
        assert_eq!(m.predict_one(&[0.0]), 1.0);
        assert_eq!(m.name(), "mean");
    }

    #[test]
    fn fit_report_final_mse() {
        let r = FitReport {
            epochs: 2,
            train_mse_history: vec![2.0, 1.0],
            converged: false,
        };
        assert_eq!(r.final_mse(), Some(1.0));
        let empty = FitReport {
            epochs: 0,
            train_mse_history: vec![],
            converged: false,
        };
        assert_eq!(empty.final_mse(), None);
    }
}
