//! Multi-model hyperdimensional regression — the main RegHD algorithm
//! (paper §2.4, Fig. 4) with the quantisation framework of §3.
//!
//! Training, per sample `(x, y)`:
//!
//! 1. encode `x` into `S` (integer) and `S^b` (binary)       — ①
//! 2. similarity of `S` with every cluster `C_i` (Eq. 5,
//!    or Hamming against `C_i^b` in quantised-cluster mode)   — ②
//! 3. softmax-normalise similarities into confidences `δ′`    — ③
//! 4. predict `ŷ = Σ_i δ′_i · (M_i ⋅ S)` (Eq. 6, in the
//!    configured precision mode)                              — ④
//! 5. update all models with the shared error `y − ŷ`
//!    (Eq. 7; see [`UpdateRule`] for the weighting reading)   — ⑤
//! 6. update the argmax cluster `C_l ← C_l + (1 − δ_l)·S`
//!    (Eq. 8/9)
//!
//! Epochs repeat over shuffled data until the training MSE stabilises
//! ("the quality of regression stabilizes during the last few iterations").

use crate::banks::{ClusterBank, EncodedQuery, ModelBank};
use crate::config::{PredictionMode, RegHdConfig, UpdateRule};
use crate::traits::{FitReport, Regressor};
use encoding::Encoder;
use hdc::rng::HdRng;
use hdc::similarity::{argmax, softmax, softmax_into};
use hdc::{RealHv, TrigMode};

/// Reusable per-caller buffers for [`RegHdRegressor::predict_batch_with`].
///
/// Holds the encoded-hypervector slots the blocked batch encoder writes
/// into plus the per-row similarity/confidence/score buffers. A caller that
/// keeps one `PredictScratch` alive across calls (the `reghd-serve` worker
/// loop does) gets a steady-state prediction path with **no `RealHv`
/// allocations per request** — the remaining per-row allocation is the
/// 8×-smaller binary view built by [`EncodedQuery::new`].
#[derive(Debug, Default)]
pub struct PredictScratch {
    /// Output slots for the batch encoder; grown on demand, never shrunk.
    encoded: Vec<RealHv>,
    sims: Vec<f32>,
    conf: Vec<f32>,
    scores: Vec<f32>,
    /// Staging buffer for the quantised tier's encoded f32 values
    /// ([`RegHdRegressor::predict_batch_binary_with`]).
    vals: Vec<f32>,
    /// Bit-packed sign words for the quantised tier, round-tripped through
    /// [`hdc::BinaryHv::from_words`]/[`hdc::BinaryHv::into_words`] so the
    /// steady state allocates nothing per row.
    words: Vec<u64>,
}

/// The RegHD multi-model regressor.
///
/// # Examples
///
/// ```
/// use reghd::{RegHdRegressor, Regressor, config::RegHdConfig};
/// use encoding::NonlinearEncoder;
///
/// // Two regimes: y = +2 around x = -1, y = -2 around x = +1.
/// let xs: Vec<Vec<f32>> = (0..100)
///     .map(|i| {
///         let c = if i % 2 == 0 { -1.0 } else { 1.0 };
///         vec![c + 0.05 * ((i % 10) as f32 - 5.0) / 5.0]
///     })
///     .collect();
/// let ys: Vec<f32> = xs.iter().map(|x| if x[0] < 0.0 { 2.0 } else { -2.0 }).collect();
///
/// let cfg = RegHdConfig::builder().dim(1024).models(4).max_epochs(20).build();
/// let enc = NonlinearEncoder::new(1, 1024, 3);
/// let mut model = RegHdRegressor::new(cfg, Box::new(enc));
/// let report = model.fit(&xs, &ys);
/// assert!(report.final_mse().unwrap() < 0.5);
/// ```
pub struct RegHdRegressor {
    config: RegHdConfig,
    encoder: Box<dyn Encoder>,
    clusters: ClusterBank,
    models: ModelBank,
    intercept: f32,
    /// Training-set mean encoding, subtracted from every encoding when
    /// `config.center_encodings` is on (see that field's docs).
    center: Option<hdc::RealHv>,
    trained: bool,
    /// Row-parallelism knob for the batch paths (`0` = available
    /// parallelism, `1` = sequential). Atomic so serving can set it through
    /// a shared reference after the model is behind an `Arc`.
    threads: std::sync::atomic::AtomicUsize,
}

impl std::fmt::Debug for RegHdRegressor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegHdRegressor")
            .field("dim", &self.config.dim)
            .field("models", &self.config.models)
            .field("cluster_mode", &self.config.cluster_mode)
            .field("prediction_mode", &self.config.prediction_mode)
            .field("trained", &self.trained)
            .finish()
    }
}

impl RegHdRegressor {
    /// Creates an untrained multi-model regressor.
    ///
    /// # Panics
    ///
    /// Panics if `encoder.dim() != config.dim` or the config is invalid.
    pub fn new(config: RegHdConfig, encoder: Box<dyn Encoder>) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid RegHdConfig: {e}"));
        assert_eq!(
            encoder.dim(),
            config.dim,
            "encoder dim {} does not match config dim {}",
            encoder.dim(),
            config.dim
        );
        let mut rng = HdRng::seed_from(config.seed ^ 0xC1_05_7E_12);
        let clusters = ClusterBank::new(config.models, config.dim, config.cluster_mode, &mut rng);
        let models = ModelBank::new(config.models, config.dim, config.prediction_mode);
        Self {
            config,
            encoder,
            clusters,
            models,
            intercept: 0.0,
            center: None,
            trained: false,
            threads: std::sync::atomic::AtomicUsize::new(1),
        }
    }

    /// Sets the number of threads the batch paths (`predict_batch`, the
    /// `fit`/`refine` encoding passes) may use. `0` means "use available
    /// parallelism"; `1` restores the exact single-threaded behavior.
    ///
    /// Rows are split across threads in contiguous chunks with the per-row
    /// arithmetic order unchanged ([`hdc::par`]), so predictions are
    /// **bit-identical** for every setting. Takes `&self` so the knob can be
    /// turned after the model is shared behind an `Arc`.
    pub fn set_threads(&self, threads: usize) {
        self.threads
            .store(threads, std::sync::atomic::Ordering::Relaxed);
    }

    /// The configured thread knob, as set by [`Self::set_threads`]
    /// (`0` = available parallelism). New models default to `1`.
    pub fn threads(&self) -> usize {
        self.threads.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The thread knob resolved to an actual thread count.
    fn effective_threads(&self) -> usize {
        hdc::par::resolve_threads(self.threads())
    }

    /// The configuration this regressor was built with.
    pub fn config(&self) -> &RegHdConfig {
        &self.config
    }

    /// The encoder this regressor encodes queries with (benchmarks drive
    /// `Encoder::encode_batch` on it directly).
    pub fn encoder(&self) -> &dyn encoding::Encoder {
        self.encoder.as_ref()
    }

    /// The cluster bank (inspection access).
    pub fn clusters(&self) -> &ClusterBank {
        &self.clusters
    }

    /// The model bank (inspection access).
    pub fn models(&self) -> &ModelBank {
        &self.models
    }

    /// Mutable model-bank access for out-of-band edits (sparsification).
    pub(crate) fn models_mut(&mut self) -> &mut ModelBank {
        &mut self.models
    }

    /// The learned intercept.
    pub fn intercept(&self) -> f32 {
        self.intercept
    }

    /// The training-set mean encoding subtracted from queries, if centring
    /// is enabled and the model has been fitted.
    pub fn center(&self) -> Option<&hdc::RealHv> {
        self.center.as_ref()
    }

    /// Rebuilds a trained regressor from persisted state (see
    /// [`crate::persist`]). The banks' binary copies and amplitudes are
    /// re-derived from the integer copies.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid, the encoder/bank/config shapes
    /// disagree, or the bank vectors are empty.
    pub fn from_parts(
        config: RegHdConfig,
        encoder: Box<dyn Encoder>,
        clusters_int: Vec<hdc::RealHv>,
        models_int: Vec<hdc::RealHv>,
        center: Option<hdc::RealHv>,
        intercept: f32,
    ) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid RegHdConfig: {e}"));
        assert_eq!(encoder.dim(), config.dim, "encoder/config dim mismatch");
        assert_eq!(clusters_int.len(), config.models, "cluster count mismatch");
        assert_eq!(models_int.len(), config.models, "model count mismatch");
        assert!(
            clusters_int
                .iter()
                .chain(&models_int)
                .all(|v| v.dim() == config.dim),
            "bank vectors must match config.dim"
        );
        if let Some(c) = &center {
            assert_eq!(c.dim(), config.dim, "center width mismatch");
        }
        let clusters = ClusterBank::from_parts(config.cluster_mode, clusters_int);
        let models = ModelBank::from_parts(config.prediction_mode, models_int);
        Self {
            config,
            encoder,
            clusters,
            models,
            intercept,
            center,
            trained: true,
            threads: std::sync::atomic::AtomicUsize::new(1),
        }
    }

    /// Predicts with hardware-fault emulation: each component of the
    /// encoded query hypervector has its sign flipped independently with
    /// probability `flip_rate` before the similarity search and prediction
    /// run. This is the §3 fault model ("errors in its components") used by
    /// the robustness evaluation; because the dot product sees the product
    /// of query and model components, faults here are interchangeable with
    /// faults in the stored model.
    ///
    /// # Panics
    ///
    /// Panics if `flip_rate` is not within `[0, 1]` or `x` has the wrong
    /// width.
    pub fn predict_one_with_noise(&self, x: &[f32], flip_rate: f64, rng: &mut HdRng) -> f32 {
        let q = self.encode(x);
        let noisy = hdc::noise::flip_signs(&q.real, flip_rate, rng);
        let q = EncodedQuery::new(noisy);
        self.forward(&q).0
    }

    /// Batched prediction through the **bit-packed binary tier** —
    /// identical to [`RegHdRegressor::predict_batch_binary`]. The serving
    /// layer historically called this entry point for its degraded-mode
    /// fallback; the tier is now also selectable per request (it answers
    /// both explicit binary-tier requests and overload demotions), so the
    /// two names share one implementation.
    pub fn predict_batch_degraded(&self, xs: &[Vec<f32>]) -> Vec<f32> {
        self.predict_batch_binary(xs)
    }

    /// Batched prediction through the **bit-packed binary tier**: int8
    /// integer encode (where the encoder supports it, see
    /// [`encoding::Encoder::encode_quantized_into`]), sign-packed query
    /// words, Hamming similarity against the clusters' binary copies, and
    /// the pure popcount model scores of §3.2's binary–binary configuration
    /// — regardless of the configured [`PredictionMode`]. No f32
    /// multiply-accumulate touches the `D`-wide vectors after the encode.
    ///
    /// The tier is *approximate by design* (quantised projection, fast
    /// polynomial trig, sign-only similarity); accuracy bounds are measured
    /// in `EXPERIMENTS.md` against the paper's §3.2 quality-loss claims.
    /// The model's binary copies are refreshed at the end of every
    /// `fit`/`refine` in every mode, so the tier is always coherent with the
    /// full-precision path. Non-finite input rows short-circuit to `NaN`
    /// exactly like [`Regressor::predict_batch`].
    pub fn predict_batch_binary(&self, xs: &[Vec<f32>]) -> Vec<f32> {
        let mut scratch = PredictScratch::default();
        self.predict_batch_binary_with(xs, &mut scratch)
    }

    /// [`RegHdRegressor::predict_batch_binary`] with caller-owned scratch —
    /// the zero-allocation serving entry point for the binary tier. Honors
    /// the [`RegHdRegressor::set_threads`] knob with the same contiguous
    /// chunking (and therefore bit-identical output) as the full path.
    pub fn predict_batch_binary_with(
        &self,
        xs: &[Vec<f32>],
        scratch: &mut PredictScratch,
    ) -> Vec<f32> {
        let mut out = vec![0.0f32; xs.len()];
        let threads = self.effective_threads();
        if threads > 1 && xs.len() > 1 {
            hdc::par::chunked_zip_mut(xs, &mut out, threads, |part, out_part| {
                let mut local = PredictScratch::default();
                self.predict_binary_chunk_into(part, out_part, &mut local);
            });
        } else {
            self.predict_binary_chunk_into(xs, &mut out, scratch);
        }
        out
    }

    /// One contiguous chunk of the binary tier. Per row: integer encode
    /// into `scratch.vals` (falling back to the f32 encoder when the
    /// encoder has no quantised path), centre-subtract, derive the
    /// amplitude statistic, pack the signs into `scratch.words`, then
    /// Hamming similarities → softmax → popcount scores.
    ///
    /// Normalisation never rescales the values: Hamming similarity is
    /// invariant to positive scaling, so only the amplitude statistic is
    /// divided by the norm when `normalize_encodings` is on.
    fn predict_binary_chunk_into(
        &self,
        xs: &[Vec<f32>],
        out: &mut [f32],
        scratch: &mut PredictScratch,
    ) {
        let dim = self.config.dim;
        scratch.vals.resize(dim, 0.0);
        for (i, x) in xs.iter().enumerate() {
            if !x.iter().all(|v| v.is_finite()) {
                out[i] = f32::NAN;
                continue;
            }
            if !self.encoder.encode_quantized_into(x, &mut scratch.vals) {
                // Encoder without an integer path (ID-level, temporal):
                // fall back to the f32 encode and binarise that instead.
                scratch
                    .vals
                    .copy_from_slice(self.encoder.encode(x).as_slice());
            }
            if let Some(center) = &self.center {
                for (v, &c) in scratch.vals.iter_mut().zip(center.as_slice()) {
                    *v -= c;
                }
            }
            // One fused pass derives both amplitude statistics (f64, fixed
            // 4-lane accumulation order — see `hdc::simd::abs_sq_sums`).
            let (sum_abs, sum_sq) = hdc::simd::abs_sq_sums(&scratch.vals);
            let mut amp = (sum_abs / dim as f64) as f32;
            if self.config.normalize_encodings {
                let norm = sum_sq.sqrt();
                if norm > 0.0 {
                    amp = ((sum_abs / dim as f64) / norm) as f32;
                }
            }
            // Pack the signs (the `> 0` threshold of `RealHv::binarize`).
            scratch.words.resize(dim.div_ceil(64), 0);
            hdc::simd::pack_signs(&scratch.vals, &mut scratch.words);
            let bin = hdc::BinaryHv::from_words(dim, std::mem::take(&mut scratch.words));
            self.clusters
                .binary_similarities_into(&bin, &mut scratch.sims);
            softmax_into(&scratch.sims, self.config.softmax_beta, &mut scratch.conf);
            self.models
                .binary_scores_into(&bin, amp, &mut scratch.scores);
            out[i] = scratch
                .conf
                .iter()
                .zip(&scratch.scores)
                .map(|(&c, &s)| c * s)
                .sum::<f32>()
                + self.intercept;
            // Hand the word buffer back for the next row.
            scratch.words = bin.into_words();
        }
    }

    /// [`Regressor::predict_batch`] with caller-owned scratch buffers — the
    /// zero-allocation serving entry point. Results are bit-identical to
    /// `predict_batch` (which is this method with throwaway scratch).
    pub fn predict_batch_with(&self, xs: &[Vec<f32>], scratch: &mut PredictScratch) -> Vec<f32> {
        self.predict_batch_mode_with(xs, self.models.mode(), scratch)
    }

    /// The shared batch-prediction engine: blocked batch encode into the
    /// scratch slots, then one forward pass per row with every intermediate
    /// buffer reused. `mode` selects the score path (`scores_into` is
    /// `scores_into_mode` with the bank's own mode, so passing it here
    /// changes nothing for the configured path and lets the degraded
    /// fallback force `BinaryQuery`).
    fn predict_batch_mode_with(
        &self,
        xs: &[Vec<f32>],
        mode: PredictionMode,
        scratch: &mut PredictScratch,
    ) -> Vec<f32> {
        let mut out = vec![0.0f32; xs.len()];
        let threads = self.effective_threads();
        if threads > 1 && xs.len() > 1 {
            // Same contiguous chunking as the encoder's own batch path, so
            // per-row arithmetic (and therefore every output bit) matches
            // the sequential run; each worker carries its own scratch.
            hdc::par::chunked_zip_mut(xs, &mut out, threads, |part, out_part| {
                let mut local = PredictScratch::default();
                self.predict_chunk_into(part, out_part, mode, &mut local);
            });
        } else {
            self.predict_chunk_into(xs, &mut out, mode, scratch);
        }
        out
    }

    /// One contiguous chunk of the batch path: kernel-encode every row into
    /// the scratch slots (bit-identical to scalar `encode`), then run the
    /// forward pass per row, handing each slot's buffer back for the next
    /// call. Non-finite rows short-circuit to `NaN` exactly like the old
    /// per-row loop.
    fn predict_chunk_into(
        &self,
        xs: &[Vec<f32>],
        out: &mut [f32],
        mode: PredictionMode,
        scratch: &mut PredictScratch,
    ) {
        if scratch.encoded.len() < xs.len() {
            scratch.encoded.resize(xs.len(), RealHv::default());
        }
        self.encoder
            .encode_batch_into(xs, &mut scratch.encoded[..xs.len()], 1);
        for (i, x) in xs.iter().enumerate() {
            if !x.iter().all(|v| v.is_finite()) {
                out[i] = f32::NAN;
                continue;
            }
            let mut real = std::mem::take(&mut scratch.encoded[i]);
            if let Some(center) = &self.center {
                real.add_scaled(center, -1.0);
            }
            if self.config.normalize_encodings {
                real.normalize();
            }
            let q = EncodedQuery::new(real);
            self.clusters
                .similarities_into(&q.real, &q.binary, &mut scratch.sims);
            softmax_into(&scratch.sims, self.config.softmax_beta, &mut scratch.conf);
            self.models
                .scores_into_mode(mode, &q.real, &q.binary, q.amp, &mut scratch.scores);
            out[i] = scratch
                .conf
                .iter()
                .zip(&scratch.scores)
                .map(|(&c, &s)| c * s)
                .sum::<f32>()
                + self.intercept;
            // Hand the encoded buffer back to its slot so the next batch
            // through this scratch reuses the allocation.
            scratch.encoded[i] = q.real;
        }
    }

    /// Forwards to the encoder's trig knob (see [`TrigMode`]): `Fast` swaps
    /// `libm` sin/cos for the bounded-error polynomial path during
    /// inference. Training and canary replay always force `Exact`.
    pub fn set_trig_mode(&self, mode: TrigMode) {
        self.encoder.set_trig_mode(mode);
    }

    /// The encoder's current trig evaluation mode.
    pub fn trig_mode(&self) -> TrigMode {
        self.encoder.trig_mode()
    }

    fn encode(&self, x: &[f32]) -> EncodedQuery {
        let mut s = self.encoder.encode(x);
        if let Some(center) = &self.center {
            s.add_scaled(center, -1.0);
        }
        if self.config.normalize_encodings {
            s.normalize();
        }
        EncodedQuery::new(s)
    }

    /// Crate-internal access to the full encoding pipeline (centre +
    /// normalise), used by the diagnostics module.
    pub(crate) fn encode_query(&self, x: &[f32]) -> EncodedQuery {
        self.encode(x)
    }

    /// Continues training an already-fitted model on additional data for
    /// `epochs` passes **without resetting** the learned state — the
    /// incremental-retraining capability HD systems advertise for model
    /// maintenance on devices. The stored encoding centre from the original
    /// fit is reused (new data is assumed to come from a similar input
    /// distribution); cluster and model banks keep accumulating.
    ///
    /// Refining on data from a *shifted* distribution adapts the model
    /// toward it, trading away old-distribution precision like any online
    /// learner under drift; interleave old samples ("replay") to retain
    /// both.
    ///
    /// Returns the per-epoch training MSE on the new data.
    ///
    /// # Panics
    ///
    /// Panics if the model has not been fitted yet, the inputs are empty or
    /// mismatched, or `epochs == 0`.
    pub fn refine(&mut self, features: &[Vec<f32>], targets: &[f32], epochs: usize) -> FitReport {
        assert!(
            self.trained,
            "refine requires a fitted model; call fit first"
        );
        assert_eq!(
            features.len(),
            targets.len(),
            "features and targets must have the same length"
        );
        assert!(!features.is_empty(), "cannot refine on empty data");
        assert!(epochs > 0, "epochs must be nonzero");

        // Blocked batch encode (bit-identical to per-row `encode`), then the
        // centre/normalise steps the per-row path would apply.
        let encoded: Vec<EncodedQuery> = self
            .encoder
            .encode_batch(features, self.effective_threads())
            .into_iter()
            .map(|mut s| {
                if let Some(center) = &self.center {
                    s.add_scaled(center, -1.0);
                }
                if self.config.normalize_encodings {
                    s.normalize();
                }
                EncodedQuery::new(s)
            })
            .collect();
        let mut rng = HdRng::seed_from(self.config.seed ^ 0x4E_F1_4E);
        let mut order: Vec<usize> = (0..features.len()).collect();
        let mut history = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            for i in (1..order.len()).rev() {
                let j = rng.next_below(i + 1);
                order.swap(i, j);
            }
            let mut sq_err = 0.0f64;
            let model_is_binary = self.config.prediction_mode.model_is_binary();
            for (step, &i) in order.iter().enumerate() {
                let q = &encoded[i];
                let (pred, conf, sims) = self.forward(q);
                let err = targets[i] - pred;
                sq_err += (err as f64) * (err as f64);
                self.update_models(err, &conf, q);
                if self.config.intercept {
                    self.intercept += self.config.learning_rate * 0.1 * err;
                }
                if let Some(l) = argmax(&sims) {
                    self.clusters.update(l, sims[l], &q.real);
                }
                if model_is_binary && (step + 1) % self.config.quantize_batch == 0 {
                    self.models.end_epoch();
                }
            }
            self.clusters.end_epoch();
            self.models.end_epoch();
            history.push((sq_err / order.len() as f64) as f32);
        }
        // Binary-tier coherence: the bit-packed tier scores against the
        // models' binary copies in every PredictionMode, so refresh them
        // even in modes whose end_epoch is a no-op on the model bank.
        self.models.end_epoch_forced();
        FitReport {
            epochs: history.len(),
            train_mse_history: history,
            converged: false,
        }
    }

    /// Steps ②–④ for one encoded query: similarities, confidences, and the
    /// confidence-weighted prediction of Eq. 6. Returns
    /// `(prediction, confidences, similarities)` so training can reuse the
    /// intermediates ([C-INTERMEDIATE]).
    fn forward(&self, q: &EncodedQuery) -> (f32, Vec<f32>, Vec<f32>) {
        let sims = self.clusters.similarities(&q.real, &q.binary);
        let conf = softmax(&sims, self.config.softmax_beta);
        let scores = self.models.scores(&q.real, &q.binary, q.amp);
        let pred: f32 =
            conf.iter().zip(&scores).map(|(&c, &s)| c * s).sum::<f32>() + self.intercept;
        (pred, conf, sims)
    }

    /// Step ⑤: distribute the prediction error to the models per the
    /// configured [`UpdateRule`].
    fn update_models(&mut self, err: f32, conf: &[f32], q: &EncodedQuery) {
        let alpha = self.config.learning_rate;
        match self.config.update_rule {
            UpdateRule::ConfidenceWeighted => {
                for (i, &c) in conf.iter().enumerate() {
                    if c > 1e-6 {
                        self.models.update(i, alpha * c * err, &q.real);
                    }
                }
            }
            UpdateRule::SharedError => {
                for i in 0..conf.len() {
                    self.models.update(i, alpha * err, &q.real);
                }
            }
            UpdateRule::ArgmaxOnly => {
                if let Some(l) = argmax(conf) {
                    self.models.update(l, alpha * err, &q.real);
                }
            }
        }
    }
}

impl Regressor for RegHdRegressor {
    fn fit(&mut self, features: &[Vec<f32>], targets: &[f32]) -> FitReport {
        assert_eq!(
            features.len(),
            targets.len(),
            "features and targets must have the same length"
        );
        assert!(!features.is_empty(), "cannot fit on empty data");

        // Reset so repeated fits are independent.
        let mut rng = HdRng::seed_from(self.config.seed ^ 0xC1_05_7E_12);
        self.clusters = ClusterBank::new(
            self.config.models,
            self.config.dim,
            self.config.cluster_mode,
            &mut rng,
        );
        self.models = ModelBank::new(
            self.config.models,
            self.config.dim,
            self.config.prediction_mode,
        );
        self.intercept = 0.0;
        self.center = None;

        // Fit the encoding centre (see `RegHdConfig::center_encodings`),
        // then encode the training set once. The encoding pass is the
        // per-epoch-independent bulk of fit's cost and rows are independent,
        // so it goes through the bit-exact row-parallel batch encoder.
        let mut raw: Vec<hdc::RealHv> = self
            .encoder
            .encode_batch(features, self.effective_threads());
        if self.config.center_encodings {
            let mut mean = hdc::RealHv::zeros(self.config.dim);
            for s in &raw {
                mean.add_scaled(s, 1.0 / raw.len() as f32);
            }
            for s in &mut raw {
                s.add_scaled(&mean, -1.0);
            }
            self.center = Some(mean);
        }
        if self.config.normalize_encodings {
            for s in &mut raw {
                s.normalize();
            }
        }
        let encoded: Vec<EncodedQuery> = raw.into_iter().map(EncodedQuery::new).collect();

        let mut order: Vec<usize> = (0..features.len()).collect();
        let mut history: Vec<f32> = Vec::new();
        let mut calm_epochs = 0usize;
        let mut converged = false;

        for _epoch in 0..self.config.max_epochs {
            for i in (1..order.len()).rev() {
                let j = rng.next_below(i + 1);
                order.swap(i, j);
            }
            let mut sq_err = 0.0f64;
            let model_is_binary = self.config.prediction_mode.model_is_binary();
            for (step, &i) in order.iter().enumerate() {
                let q = &encoded[i];
                let (pred, conf, sims) = self.forward(q);
                let err = targets[i] - pred;
                sq_err += (err as f64) * (err as f64);

                self.update_models(err, &conf, q);
                if self.config.intercept {
                    self.intercept += self.config.learning_rate * 0.1 * err;
                }
                // Step ⑥: cluster update on the most-similar centre.
                if let Some(l) = argmax(&sims) {
                    self.clusters.update(l, sims[l], &q.real);
                }
                // Per-batch re-binarisation (§3.2 "or a batch"): keeps the
                // quantised prediction path responsive to the updates.
                if model_is_binary && (step + 1) % self.config.quantize_batch == 0 {
                    self.models.end_epoch();
                }
            }
            self.clusters.end_epoch();
            self.models.end_epoch();

            let epoch_mse = (sq_err / order.len() as f64) as f32;
            // Stopping rule on the best MSE seen so far: an epoch only
            // resets the patience counter if it *improves* on the best by
            // more than the tolerance. (A last-epoch-relative rule never
            // fires on noisy quantised training, which oscillates around
            // its floor.)
            match history.iter().copied().fold(f32::INFINITY, f32::min) {
                best if epoch_mse < best * (1.0 - self.config.convergence_tol) => {
                    calm_epochs = 0;
                }
                best if best.is_finite() => calm_epochs += 1,
                _ => {}
            }
            history.push(epoch_mse);
            if history.len() >= self.config.min_epochs && calm_epochs >= self.config.patience {
                converged = true;
                break;
            }
        }

        // Binary-tier coherence (see the same call in `refine`): the
        // bit-packed tier scores against the models' binary copies in every
        // PredictionMode, so refresh them even in modes whose end_epoch is
        // a no-op on the model bank.
        self.models.end_epoch_forced();

        self.trained = true;
        FitReport {
            epochs: history.len(),
            train_mse_history: history,
            converged,
        }
    }

    fn predict_one(&self, x: &[f32]) -> f32 {
        let q = self.encode(x);
        self.forward(&q).0
    }

    /// Batched prediction through the cache-blocked encode kernel with
    /// every per-row buffer reused (see [`RegHdRegressor::predict_batch_with`]
    /// for the variant that also reuses buffers *across* calls).
    ///
    /// When [`RegHdRegressor::set_threads`] asks for more than one thread,
    /// rows are split across scoped threads in contiguous chunks with the
    /// per-row arithmetic unchanged, so the output is **bit-identical** to
    /// the single-threaded run.
    fn predict_batch(&self, xs: &[Vec<f32>]) -> Vec<f32> {
        let mut scratch = PredictScratch::default();
        self.predict_batch_with(xs, &mut scratch)
    }

    fn name(&self) -> String {
        format!(
            "RegHD-{}({},{})",
            self.config.models,
            self.config.cluster_mode.label(),
            self.config.prediction_mode.label()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterMode, PredictionMode};
    use encoding::NonlinearEncoder;

    /// Multi-regime task: `k` well-separated input clusters with opposite
    /// local slopes — the workload single-model RegHD cannot fit (§2.3).
    fn multimodal(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<f32>) {
        let mut rng = HdRng::seed_from(seed);
        let centers = [
            ([-2.0f32, -2.0], 3.0f32, 1.0f32),
            ([2.0, 2.0], -3.0, -1.0),
            ([-2.0, 2.0], 0.0, 2.5),
            ([2.0, -2.0], 1.5, -2.5),
        ];
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let (c, slope, offset) = centers[rng.next_below(4)];
            let x = [
                c[0] + 0.3 * rng.next_gaussian() as f32,
                c[1] + 0.3 * rng.next_gaussian() as f32,
            ];
            let y = offset + slope * (x[0] - c[0]) + 0.05 * rng.next_gaussian() as f32;
            xs.push(x.to_vec());
            ys.push(y);
        }
        (xs, ys)
    }

    fn make(models: usize, seed: u64) -> RegHdRegressor {
        let cfg = RegHdConfig::builder()
            .dim(2048)
            .models(models)
            .max_epochs(30)
            .seed(seed)
            .build();
        let enc = NonlinearEncoder::new(2, 2048, seed);
        RegHdRegressor::new(cfg, Box::new(enc))
    }

    fn make_with(
        models: usize,
        cluster: ClusterMode,
        pred: PredictionMode,
        seed: u64,
    ) -> RegHdRegressor {
        let cfg = RegHdConfig::builder()
            .dim(2048)
            .models(models)
            .max_epochs(30)
            .cluster_mode(cluster)
            .prediction_mode(pred)
            .seed(seed)
            .build();
        let enc = NonlinearEncoder::new(2, 2048, seed);
        RegHdRegressor::new(cfg, Box::new(enc))
    }

    fn test_mse(model: &RegHdRegressor, xs: &[Vec<f32>], ys: &[f32]) -> f32 {
        let preds = model.predict(xs);
        preds
            .iter()
            .zip(ys)
            .map(|(&p, &y)| (p - y) * (p - y))
            .sum::<f32>()
            / ys.len() as f32
    }

    #[test]
    fn learns_multimodal_task() {
        let (xs, ys) = multimodal(400, 1);
        let mut m = make(8, 1);
        let report = m.fit(&xs, &ys);
        let var = {
            let mean = ys.iter().sum::<f32>() / ys.len() as f32;
            ys.iter().map(|&y| (y - mean) * (y - mean)).sum::<f32>() / ys.len() as f32
        };
        let mse = report.final_mse().unwrap();
        assert!(mse < 0.1 * var, "mse {mse} vs variance {var}");
    }

    #[test]
    fn multi_model_beats_single_on_multimodal() {
        // Figure 3b's content. The gap appears under capacity pressure
        // (§2.3): at small D a single hypervector saturates on a
        // multi-regime task while the clustered models specialise.
        let (xs, ys) = multimodal(400, 2);
        let dim = 192;
        let build = |models: usize| {
            let cfg = RegHdConfig::builder()
                .dim(dim)
                .models(models)
                .max_epochs(30)
                .seed(2)
                .build();
            RegHdRegressor::new(cfg, Box::new(NonlinearEncoder::new(2, dim, 2)))
        };
        let mut single = build(1);
        let mut multi = build(8);
        single.fit(&xs, &ys);
        multi.fit(&xs, &ys);
        let mse_single = test_mse(&single, &xs, &ys);
        let mse_multi = test_mse(&multi, &xs, &ys);
        assert!(
            mse_multi < mse_single,
            "multi {mse_multi} should beat single {mse_single}"
        );
    }

    #[test]
    fn quantized_cluster_close_to_full_precision() {
        // Figure 6's content: the framework's binary clusters track the
        // integer clusters' quality.
        let (xs, ys) = multimodal(300, 3);
        let mut full = make_with(8, ClusterMode::Integer, PredictionMode::Full, 3);
        let mut quant = make_with(8, ClusterMode::FrameworkBinary, PredictionMode::Full, 3);
        full.fit(&xs, &ys);
        quant.fit(&xs, &ys);
        let mse_full = test_mse(&full, &xs, &ys);
        let mse_quant = test_mse(&quant, &xs, &ys);
        assert!(
            mse_quant < mse_full * 2.0 + 0.05,
            "quantized {mse_quant} should be close to full {mse_full}"
        );
    }

    #[test]
    fn binary_query_mode_trains() {
        let (xs, ys) = multimodal(300, 4);
        let mut m = make_with(8, ClusterMode::Integer, PredictionMode::BinaryQuery, 4);
        let report = m.fit(&xs, &ys);
        let var = 4.0; // roughly, for this task
        assert!(
            report.final_mse().unwrap() < var,
            "binary-query should still learn: {:?}",
            report.final_mse()
        );
    }

    #[test]
    fn all_prediction_modes_predict_finite() {
        let (xs, ys) = multimodal(150, 5);
        for mode in PredictionMode::ALL {
            let mut m = make_with(4, ClusterMode::Integer, mode, 5);
            m.fit(&xs, &ys);
            let p = m.predict_one(&xs[0]);
            assert!(p.is_finite(), "{mode:?} produced {p}");
        }
    }

    #[test]
    fn predictions_deterministic() {
        let (xs, ys) = multimodal(100, 6);
        let mut a = make(4, 6);
        let mut b = make(4, 6);
        a.fit(&xs, &ys);
        b.fit(&xs, &ys);
        for x in xs.iter().take(5) {
            assert_eq!(a.predict_one(x), b.predict_one(x));
        }
    }

    #[test]
    fn refit_is_independent() {
        let (xs, ys) = multimodal(100, 7);
        let mut m = make(4, 7);
        m.fit(&xs, &ys);
        let first = m.predict_one(&xs[0]);
        m.fit(&xs, &ys);
        let second = m.predict_one(&xs[0]);
        assert_eq!(first, second);
    }

    #[test]
    fn clusters_specialise_to_input_regimes() {
        // After training, different input regimes should activate different
        // argmax clusters (the run-time clustering claim of §2.4).
        let (xs, ys) = multimodal(400, 8);
        let mut m = make(8, 8);
        m.fit(&xs, &ys);
        let probe = |x: &[f32]| {
            let q = m.encode(x);
            argmax(&m.clusters.similarities(&q.real, &q.binary)).unwrap()
        };
        let c1 = probe(&[-2.0, -2.0]);
        let c2 = probe(&[2.0, 2.0]);
        let c3 = probe(&[-2.0, 2.0]);
        // At least two distinct regimes must map to distinct clusters.
        assert!(
            c1 != c2 || c2 != c3,
            "all regimes mapped to cluster {c1} — no specialisation"
        );
    }

    #[test]
    fn refine_improves_on_new_regime() {
        // Fit on two regimes, then refine with data from a third; the
        // refined model must fit the new regime without forgetting the old
        // ones entirely.
        let (xs, ys) = multimodal(300, 11);
        let mut m = make(8, 11);
        m.fit(&xs, &ys);
        let base_mse = test_mse(&m, &xs, &ys);

        // New regime around (0, 0) with its own response.
        let mut rng = HdRng::seed_from(77);
        let new_x: Vec<Vec<f32>> = (0..150)
            .map(|_| {
                vec![
                    0.3 * rng.next_gaussian() as f32,
                    0.3 * rng.next_gaussian() as f32,
                ]
            })
            .collect();
        let new_y: Vec<f32> = new_x.iter().map(|x| 5.0 + x[0]).collect();
        let before_new: f32 = new_x
            .iter()
            .zip(&new_y)
            .map(|(x, &y)| {
                let e = m.predict_one(x) - y;
                e * e
            })
            .sum::<f32>()
            / new_y.len() as f32;
        m.refine(&new_x, &new_y, 10);
        let after_new: f32 = new_x
            .iter()
            .zip(&new_y)
            .map(|(x, &y)| {
                let e = m.predict_one(x) - y;
                e * e
            })
            .sum::<f32>()
            / new_y.len() as f32;
        assert!(
            after_new < 0.3 * before_new,
            "refine should fit the new regime: {before_new} -> {after_new}"
        );
        // Refinement on new-distribution-only data is *adaptation*: old-task
        // precision is traded away (as in any drifting online learner). The
        // bound is that the old task does not collapse below the mean
        // predictor's floor.
        let old_after = test_mse(&m, &xs, &ys);
        let mean: f32 = ys.iter().sum::<f32>() / ys.len() as f32;
        let var: f32 = ys.iter().map(|&y| (y - mean) * (y - mean)).sum::<f32>() / ys.len() as f32;
        assert!(
            old_after < 1.5 * var,
            "old task collapsed far below the mean floor: {base_mse} -> {old_after} (var {var})"
        );
    }

    #[test]
    #[should_panic(expected = "requires a fitted model")]
    fn refine_before_fit_panics() {
        make(2, 0).refine(&[vec![0.0, 0.0]], &[1.0], 1);
    }

    #[test]
    fn predict_batch_matches_predict_one_in_every_mode() {
        // The buffer-reusing batched path must be bit-identical to the
        // scalar path, in every quantisation mode (the serving layer
        // depends on this equivalence).
        let (xs, ys) = multimodal(150, 12);
        for cluster in [
            ClusterMode::Integer,
            ClusterMode::FrameworkBinary,
            ClusterMode::NaiveBinary,
        ] {
            for pred in PredictionMode::ALL {
                let mut m = make_with(4, cluster, pred, 12);
                m.fit(&xs, &ys);
                let batched = m.predict_batch(&xs[..20]);
                for (x, &b) in xs[..20].iter().zip(&batched) {
                    assert_eq!(
                        m.predict_one(x),
                        b,
                        "batched path diverged under {cluster:?}/{pred:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn threaded_predict_batch_is_bit_identical() {
        let (xs, ys) = multimodal(120, 21);
        let mut m = make(4, 21);
        m.fit(&xs, &ys);
        let seq = m.predict_batch(&xs);
        let seq_degraded = m.predict_batch_degraded(&xs);
        for threads in [0usize, 2, 4, 8] {
            m.set_threads(threads);
            assert_eq!(m.threads(), threads);
            assert_eq!(m.predict_batch(&xs), seq, "threads={threads}");
            assert_eq!(
                m.predict_batch_degraded(&xs),
                seq_degraded,
                "degraded threads={threads}"
            );
        }
        m.set_threads(1);
    }

    #[test]
    fn threaded_fit_is_bit_identical() {
        let (xs, ys) = multimodal(120, 22);
        let mut seq = make(4, 22);
        seq.fit(&xs, &ys);
        let mut par = make(4, 22);
        par.set_threads(4);
        par.fit(&xs, &ys);
        for x in xs.iter().take(10) {
            assert_eq!(seq.predict_one(x), par.predict_one(x));
        }
    }

    #[test]
    fn predict_batch_with_reuses_scratch_and_matches() {
        let (xs, ys) = multimodal(80, 23);
        let mut m = make(4, 23);
        m.fit(&xs, &ys);
        let base = m.predict_batch(&xs[..20]);
        let mut scratch = PredictScratch::default();
        assert_eq!(m.predict_batch_with(&xs[..20], &mut scratch), base);
        // Steady state: the encoded slots keep their allocations across
        // calls through the same scratch.
        let ptrs: Vec<*const f32> = scratch
            .encoded
            .iter()
            .map(|o| o.as_slice().as_ptr())
            .collect();
        assert_eq!(m.predict_batch_with(&xs[..20], &mut scratch), base);
        let now: Vec<*const f32> = scratch
            .encoded
            .iter()
            .map(|o| o.as_slice().as_ptr())
            .collect();
        assert_eq!(ptrs, now, "scratch slots must be reused across calls");
        // NaN rows leave their slot untouched but still predict NaN.
        let mixed = vec![xs[0].clone(), vec![f32::NAN, 0.0], xs[1].clone()];
        let preds = m.predict_batch_with(&mixed, &mut scratch);
        assert!(preds[0].is_finite() && preds[1].is_nan() && preds[2].is_finite());
    }

    #[test]
    fn trig_mode_forwards_to_encoder_and_fast_stays_close() {
        let (xs, ys) = multimodal(120, 24);
        let mut m = make(4, 24);
        m.fit(&xs, &ys);
        assert_eq!(m.trig_mode(), TrigMode::Exact);
        let exact = m.predict_batch(&xs[..20]);
        m.set_trig_mode(TrigMode::Fast);
        assert_eq!(m.trig_mode(), TrigMode::Fast);
        let fast = m.predict_batch(&xs[..20]);
        m.set_trig_mode(TrigMode::Exact);
        for (e, f) in exact.iter().zip(&fast) {
            assert!(
                (e - f).abs() < 0.02 * (1.0 + e.abs()),
                "fast-trig prediction drifted: exact={e} fast={f}"
            );
        }
    }

    #[test]
    fn regressor_is_send_and_sync() {
        // reghd-serve shares one trained regressor across worker threads
        // behind an Arc; that is only sound while the model (including its
        // boxed encoder) stays Send + Sync.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RegHdRegressor>();
    }

    #[test]
    fn name_encodes_configuration() {
        let m = make_with(
            8,
            ClusterMode::FrameworkBinary,
            PredictionMode::BinaryQuery,
            0,
        );
        let n = m.name();
        assert!(n.contains("RegHD-8"));
        assert!(n.contains("bin-cluster"));
        assert!(n.contains("bin-query"));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn fit_empty_panics() {
        make(2, 0).fit(&[], &[]);
    }

    #[test]
    fn history_is_monotonic_enough() {
        // Iterative training must improve substantially from epoch 1.
        let (xs, ys) = multimodal(300, 9);
        let mut m = make(8, 9);
        let report = m.fit(&xs, &ys);
        let first = report.train_mse_history[0];
        let last = *report.train_mse_history.last().unwrap();
        assert!(last < first, "no improvement: first {first}, last {last}");
    }

    #[test]
    fn non_finite_rows_predict_nan_not_poison() {
        let (xs, ys) = multimodal(200, 13);
        let mut m = make(4, 13);
        m.fit(&xs, &ys);
        let batch = vec![
            xs[0].clone(),
            vec![f32::NAN, 1.0],
            vec![1.0, f32::INFINITY],
            xs[1].clone(),
        ];
        let preds = m.predict_batch(&batch);
        assert_eq!(preds.len(), 4);
        assert!(preds[0].is_finite());
        assert!(preds[1].is_nan());
        assert!(preds[2].is_nan());
        assert!(preds[3].is_finite());
        // Bad rows must not perturb neighbouring predictions.
        assert_eq!(preds[0], m.predict_one(&xs[0]));
        assert_eq!(preds[3], m.predict_one(&xs[1]));
    }

    #[test]
    fn degraded_path_is_the_binary_tier() {
        // The degraded fallback and the explicitly requested binary tier
        // are one implementation: identical outputs, in every mode.
        let (xs, ys) = multimodal(200, 14);
        for cluster in [
            ClusterMode::Integer,
            ClusterMode::FrameworkBinary,
            ClusterMode::NaiveBinary,
        ] {
            for pred in PredictionMode::ALL {
                let mut m = make_with(4, cluster, pred, 14);
                m.fit(&xs, &ys);
                assert_eq!(
                    m.predict_batch_binary(&xs[..10]),
                    m.predict_batch_degraded(&xs[..10]),
                    "tier diverged under {cluster:?}/{pred:?}"
                );
            }
        }
    }

    #[test]
    fn binary_tier_is_finite_and_deterministic_in_every_mode() {
        let (xs, ys) = multimodal(200, 16);
        for cluster in [
            ClusterMode::Integer,
            ClusterMode::FrameworkBinary,
            ClusterMode::NaiveBinary,
        ] {
            for pred in PredictionMode::ALL {
                let mut m = make_with(4, cluster, pred, 16);
                m.fit(&xs, &ys);
                let a = m.predict_batch_binary(&xs[..10]);
                assert!(
                    a.iter().all(|p| p.is_finite()),
                    "non-finite tier output under {cluster:?}/{pred:?}"
                );
                assert_eq!(a, m.predict_batch_binary(&xs[..10]));
            }
        }
    }

    #[test]
    fn binary_tier_scratch_reuse_matches_and_handles_nan() {
        let (xs, ys) = multimodal(120, 17);
        let mut m = make(4, 17);
        m.fit(&xs, &ys);
        let base = m.predict_batch_binary(&xs[..20]);
        let mut scratch = PredictScratch::default();
        assert_eq!(m.predict_batch_binary_with(&xs[..20], &mut scratch), base);
        assert_eq!(m.predict_batch_binary_with(&xs[..20], &mut scratch), base);
        let mixed = vec![xs[0].clone(), vec![f32::NAN, 0.0], xs[1].clone()];
        let preds = m.predict_batch_binary_with(&mixed, &mut scratch);
        assert!(preds[0].is_finite() && preds[1].is_nan() && preds[2].is_finite());
    }

    #[test]
    fn degraded_path_is_finite_and_close_for_full_models() {
        let (xs, ys) = multimodal(300, 15);
        let mut m = make(4, 15);
        m.fit(&xs, &ys);
        let full = m.predict_batch(&xs[..50]);
        let degraded = m.predict_batch_degraded(&xs[..50]);
        assert!(degraded.iter().all(|p| p.is_finite()));
        // Quantisation costs accuracy but the estimate stays in the same
        // regime (the paper reports <4% quality loss for binary paths).
        let var = {
            let mean = ys.iter().sum::<f32>() / ys.len() as f32;
            ys.iter().map(|&y| (y - mean) * (y - mean)).sum::<f32>() / ys.len() as f32
        };
        let mse: f32 = full
            .iter()
            .zip(&degraded)
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum::<f32>()
            / 50.0;
        assert!(mse < var, "degraded path diverged: mse {mse} vs var {var}");
        let nan_row = m.predict_batch_degraded(&[vec![f32::NAN, 0.0]]);
        assert!(nan_row[0].is_nan());
    }
}
