//! Property-based tests for the reghd crate's public API.

use encoding::{EncoderSpec, NonlinearEncoder};
use proptest::prelude::*;
use reghd::config::{ClusterMode, PredictionMode, RegHdConfig, UpdateRule};
use reghd::{persist, OnlineRegHd, RegHdRegressor, Regressor, SingleHdRegressor};

fn small_problem() -> impl Strategy<Value = (Vec<Vec<f32>>, Vec<f32>)> {
    (10usize..40).prop_flat_map(|n| {
        (
            prop::collection::vec(prop::collection::vec(-2.0f32..2.0, 2), n),
            prop::collection::vec(-2.0f32..2.0, n),
        )
    })
}

fn any_cluster_mode() -> impl Strategy<Value = ClusterMode> {
    prop_oneof![
        Just(ClusterMode::Integer),
        Just(ClusterMode::FrameworkBinary),
        Just(ClusterMode::NaiveBinary),
    ]
}

fn any_pred_mode() -> impl Strategy<Value = PredictionMode> {
    prop_oneof![
        Just(PredictionMode::Full),
        Just(PredictionMode::BinaryQuery),
        Just(PredictionMode::BinaryModel),
        Just(PredictionMode::BinaryBoth),
    ]
}

fn any_update_rule() -> impl Strategy<Value = UpdateRule> {
    prop_oneof![
        Just(UpdateRule::ConfidenceWeighted),
        Just(UpdateRule::SharedError),
        Just(UpdateRule::ArgmaxOnly),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn any_configuration_trains_finite(
        (xs, ys) in small_problem(),
        cluster in any_cluster_mode(),
        pred in any_pred_mode(),
        rule in any_update_rule(),
        k in 1usize..5,
        seed in any::<u64>(),
    ) {
        let cfg = RegHdConfig::builder()
            .dim(128)
            .models(k)
            .max_epochs(3)
            .min_epochs(1)
            .cluster_mode(cluster)
            .prediction_mode(pred)
            .update_rule(rule)
            .seed(seed)
            .build();
        let mut m = RegHdRegressor::new(cfg, Box::new(NonlinearEncoder::new(2, 128, seed)));
        let report = m.fit(&xs, &ys);
        prop_assert!(report.epochs >= 1);
        prop_assert!(report.train_mse_history.iter().all(|v| v.is_finite()));
        prop_assert!(m.predict_one(&xs[0]).is_finite());
    }

    #[test]
    fn persist_roundtrip_any_shape(
        (xs, ys) in small_problem(),
        k in 1usize..4,
        pred in any_pred_mode(),
        seed in any::<u64>(),
    ) {
        let spec = EncoderSpec::Nonlinear { input_dim: 2, dim: 128, seed };
        let cfg = RegHdConfig::builder()
            .dim(128)
            .models(k)
            .max_epochs(2)
            .min_epochs(1)
            .prediction_mode(pred)
            .seed(seed)
            .build();
        let mut m = RegHdRegressor::new(cfg, spec.build());
        m.fit(&xs, &ys);
        let mut buf = Vec::new();
        persist::save(&m, &spec, &mut buf).unwrap();
        let loaded = persist::load(&mut buf.as_slice()).unwrap();
        for x in xs.iter().take(5) {
            prop_assert_eq!(loaded.predict_one(x), m.predict_one(x));
        }
    }

    #[test]
    fn persist_roundtrip_every_mode_combination(
        (xs, ys) in small_problem(),
        k in 1usize..4,
        seed in any::<u64>(),
    ) {
        // Exhaustive sweep: every ClusterMode × PredictionMode pair must
        // survive a save/load round-trip with bit-exact predictions.
        let cluster_modes = [
            ClusterMode::Integer,
            ClusterMode::FrameworkBinary,
            ClusterMode::NaiveBinary,
        ];
        for cluster in cluster_modes {
            for pred in PredictionMode::ALL {
                let spec = EncoderSpec::Nonlinear { input_dim: 2, dim: 128, seed };
                let cfg = RegHdConfig::builder()
                    .dim(128)
                    .models(k)
                    .max_epochs(2)
                    .min_epochs(1)
                    .cluster_mode(cluster)
                    .prediction_mode(pred)
                    .seed(seed)
                    .build();
                let mut m = RegHdRegressor::new(cfg, spec.build());
                m.fit(&xs, &ys);
                let mut buf = Vec::new();
                persist::save(&m, &spec, &mut buf).unwrap();
                let loaded = persist::load(&mut buf.as_slice()).unwrap();
                let orig_cfg = m.config();
                let loaded_cfg = loaded.config();
                prop_assert_eq!(loaded_cfg.cluster_mode, orig_cfg.cluster_mode);
                prop_assert_eq!(loaded_cfg.prediction_mode, orig_cfg.prediction_mode);
                for x in xs.iter().take(5) {
                    prop_assert_eq!(
                        loaded.predict_one(x),
                        m.predict_one(x),
                        "round-trip drift under {:?}/{:?}",
                        cluster,
                        pred
                    );
                }
                // The batched path must agree with the loaded model too.
                let batch: Vec<Vec<f32>> = xs.iter().take(5).cloned().collect();
                prop_assert_eq!(loaded.predict_batch(&batch), m.predict_batch(&batch));
            }
        }
    }

    #[test]
    fn online_stream_stays_finite(
        (xs, ys) in small_problem(),
        seed in any::<u64>(),
    ) {
        let cfg = RegHdConfig::builder().dim(128).models(2).seed(seed).build();
        let mut m = OnlineRegHd::new(cfg, Box::new(NonlinearEncoder::new(2, 128, seed)));
        for (x, &y) in xs.iter().zip(&ys) {
            let e = m.update(x, y);
            prop_assert!(e.is_finite());
        }
        prop_assert!(m.prequential_mse().is_finite());
        prop_assert_eq!(m.samples_seen(), xs.len() as u64);
    }

    #[test]
    fn single_model_prediction_is_deterministic_function(
        (xs, ys) in small_problem(),
        seed in any::<u64>(),
    ) {
        let cfg = RegHdConfig::builder()
            .dim(128)
            .max_epochs(2)
            .min_epochs(1)
            .seed(seed)
            .build();
        let mut m = SingleHdRegressor::new(cfg, Box::new(NonlinearEncoder::new(2, 128, seed)));
        m.fit(&xs, &ys);
        for x in xs.iter().take(5) {
            prop_assert_eq!(m.predict_one(x), m.predict_one(x));
        }
    }

    #[test]
    fn sparsify_density_matches_request(
        (xs, ys) in small_problem(),
        keep in 0.05f32..1.0,
    ) {
        let cfg = RegHdConfig::builder()
            .dim(256)
            .models(2)
            .max_epochs(3)
            .min_epochs(1)
            .build();
        let mut m = RegHdRegressor::new(cfg, Box::new(NonlinearEncoder::new(2, 256, 1)));
        m.fit(&xs, &ys);
        let report = m.sparsify_models(keep);
        // Ceil-based keep: density within one component of the request.
        prop_assert!(report.density <= keep + 0.01, "{:?} vs keep {}", report, keep);
        prop_assert!(m.predict_one(&xs[0]).is_finite());
    }

    #[test]
    fn constant_targets_learn_the_constant(
        rows in prop::collection::vec(prop::collection::vec(-2.0f32..2.0, 2), 10..30),
        c in -5.0f32..5.0,
    ) {
        let ys = vec![c; rows.len()];
        let cfg = RegHdConfig::builder().dim(256).models(2).max_epochs(10).build();
        let mut m = RegHdRegressor::new(cfg, Box::new(NonlinearEncoder::new(2, 256, 3)));
        m.fit(&rows, &ys);
        let pred = m.predict_one(&rows[0]);
        prop_assert!((pred - c).abs() < 0.5_f32.max(c.abs() * 0.2), "pred {} vs c {}", pred, c);
    }
}
