//! Line-oriented TCP front-end.
//!
//! Wire protocol (one request per line, one reply per line unless noted):
//!
//! ```text
//! predict <model> <f32,f32,...>   →  ok <y>            | err <reason>
//! reload <model> <path>           →  ok reloaded <model> v<version>
//! health                          →  ok
//! stats                           →  model/stat lines, then ok
//! quit                            →  ok (and the connection closes)
//! ```
//!
//! Overload is answered with `err busy` (the row is shed, never silently
//! dropped). Idle connections are closed after the configured read
//! timeout. Shutdown is graceful: the listener stops accepting, open
//! connections are joined, and the batcher drains every queued row before
//! the worker pool exits.

use crate::batcher::{Batcher, BatcherConfig};
use crate::metrics::MetricsHub;
use crate::registry::ModelRegistry;
use crate::worker::{WorkItem, WorkerPool};
use crate::ServeError;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration for [`serve`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878`. Port `0` picks a free port
    /// (the bound address is reported by [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Worker threads running model predictions.
    pub workers: usize,
    /// Micro-batching knobs.
    pub batcher: BatcherConfig,
    /// Idle connections are closed after this long without a request.
    pub read_timeout: Duration,
    /// How long a connection waits for its prediction before giving up.
    pub reply_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            workers: 4,
            batcher: BatcherConfig::default(),
            read_timeout: Duration::from_secs(30),
            reply_timeout: Duration::from_secs(10),
        }
    }
}

/// Shared state every connection thread works against.
struct Ctx {
    registry: Arc<ModelRegistry>,
    hub: Arc<MetricsHub>,
    batcher: Arc<Batcher>,
    stop: Arc<AtomicBool>,
    reply_timeout: Duration,
}

/// Running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    hub: Arc<MetricsHub>,
    batcher: Arc<Batcher>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

/// The `stats` payload: registry inventory plus per-model counters.
fn stats_lines(registry: &ModelRegistry, hub: &MetricsHub, queue_depth: usize) -> Vec<String> {
    let mut lines: Vec<String> = registry
        .list()
        .iter()
        .map(|m| {
            format!(
                "model {} v{} hash={} dim={} k={} cluster={} prediction={} bytes={}",
                m.name,
                m.version,
                m.hash,
                m.dim,
                m.models,
                m.cluster_mode,
                m.prediction_mode,
                m.bytes
            )
        })
        .collect();
    lines.extend(hub.render_all());
    lines.push(format!(
        "server connections={} bad_requests={} queue_depth={queue_depth}",
        hub.connections.load(Ordering::Relaxed),
        hub.bad_requests.load(Ordering::Relaxed),
    ));
    lines
}

/// Handles one request line; returns the reply lines and whether the
/// connection should close afterwards.
fn handle_line(line: &str, ctx: &Ctx) -> (Vec<String>, bool) {
    let mut parts = line.split_whitespace();
    match parts.next() {
        Some("health") => (vec!["ok".to_string()], false),
        Some("quit") => (vec!["ok".to_string()], true),
        Some("stats") => {
            let mut lines = stats_lines(&ctx.registry, &ctx.hub, ctx.batcher.depth());
            lines.push("ok".to_string());
            (lines, false)
        }
        Some("reload") => {
            let (Some(name), Some(path)) = (parts.next(), parts.next()) else {
                ctx.hub.bad_requests.fetch_add(1, Ordering::Relaxed);
                return (vec!["err usage: reload <model> <path>".to_string()], false);
            };
            match ctx.registry.reload(name, path) {
                Ok(meta) => (
                    vec![format!("ok reloaded {} v{}", meta.name, meta.version)],
                    false,
                ),
                Err(e) => (vec![format!("err {e}")], false),
            }
        }
        Some("predict") => {
            let (Some(name), Some(csv)) = (parts.next(), parts.next()) else {
                ctx.hub.bad_requests.fetch_add(1, Ordering::Relaxed);
                return (
                    vec!["err usage: predict <model> <f32,f32,...>".to_string()],
                    false,
                );
            };
            let Some(served) = ctx.registry.get(name) else {
                return (vec![format!("err unknown model {name}")], false);
            };
            let row: Result<Vec<f32>, _> =
                csv.split(',').map(|t| t.trim().parse::<f32>()).collect();
            let row = match row {
                Ok(r) if !r.is_empty() => r,
                _ => {
                    ctx.hub.bad_requests.fetch_add(1, Ordering::Relaxed);
                    return (vec!["err malformed feature row".to_string()], false);
                }
            };
            let metrics = ctx.hub.for_model(name);
            let (tx, rx) = sync_channel(1);
            let item = WorkItem {
                row,
                enqueued_at: Instant::now(),
                reply: tx,
            };
            if !ctx.batcher.enqueue(served, metrics, item) {
                return (vec!["err busy".to_string()], false);
            }
            match rx.recv_timeout(ctx.reply_timeout) {
                Ok(Ok(y)) => (vec![format!("ok {y}")], false),
                Ok(Err(msg)) => (vec![format!("err {msg}")], false),
                Err(_) => (vec!["err prediction timed out".to_string()], false),
            }
        }
        Some(other) => {
            ctx.hub.bad_requests.fetch_add(1, Ordering::Relaxed);
            (vec![format!("err unknown command {other}")], false)
        }
        None => (Vec::new(), false), // blank line: ignore
    }
}

fn handle_conn(stream: TcpStream, ctx: &Ctx, read_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                let (replies, close) = handle_line(line.trim_end(), ctx);
                for reply in replies {
                    if writeln!(writer, "{reply}").is_err() {
                        return;
                    }
                }
                if writer.flush().is_err() || close {
                    return;
                }
            }
            // Idle past the read timeout, or the server is stopping.
            Err(_) => return,
        }
        if ctx.stop.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Binds `cfg.addr` and starts serving `registry` until
/// [`ServerHandle::shutdown`] (or drop).
///
/// # Errors
///
/// [`ServeError::Io`] when the address cannot be bound.
pub fn serve(cfg: ServerConfig, registry: Arc<ModelRegistry>) -> Result<ServerHandle, ServeError> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let hub = Arc::new(MetricsHub::new());
    let pool = Arc::new(WorkerPool::new(cfg.workers, cfg.workers * 2));
    let batcher = Arc::new(Batcher::new(cfg.batcher.clone(), pool));
    let stop = Arc::new(AtomicBool::new(false));

    let ctx = Arc::new(Ctx {
        registry,
        hub: hub.clone(),
        batcher: batcher.clone(),
        stop: stop.clone(),
        reply_timeout: cfg.reply_timeout,
    });
    let read_timeout = cfg.read_timeout;
    let stop_accept = stop.clone();
    let accept_thread = std::thread::Builder::new()
        .name("reghd-accept".to_string())
        .spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            while !stop_accept.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        ctx.hub.connections.fetch_add(1, Ordering::Relaxed);
                        let ctx = ctx.clone();
                        let h = std::thread::Builder::new()
                            .name("reghd-conn".to_string())
                            .spawn(move || handle_conn(stream, &ctx, read_timeout))
                            .expect("spawn connection thread");
                        conns.push(h);
                        conns.retain(|h| !h.is_finished());
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            for h in conns {
                let _ = h.join();
            }
        })
        .expect("spawn accept thread");

    Ok(ServerHandle {
        local_addr,
        stop,
        accept_thread: Some(accept_thread),
        hub,
        batcher,
    })
}

impl ServerHandle {
    /// The address the server actually bound (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's metrics hub (for inspection in tests and benches).
    pub fn metrics(&self) -> Arc<MetricsHub> {
        self.hub.clone()
    }

    /// Gracefully stops the server: no new connections, open connections
    /// joined, queued rows drained through the pool. Returns the final
    /// `stat` lines so callers can log them.
    pub fn shutdown(mut self) -> Vec<String> {
        self.stop_and_join();
        self.hub.render_all()
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        self.batcher.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle;
    use datasets::Dataset;
    use std::io::BufRead;

    fn start_server() -> (ServerHandle, Arc<ModelRegistry>) {
        let features: Vec<Vec<f32>> = (0..40).map(|i| vec![i as f32, (i * 2) as f32]).collect();
        let targets: Vec<f32> = features.iter().map(|r| r[0] + r[1]).collect();
        let ds = Dataset::new("toy", features, targets);
        let (b, _) = bundle::train(&ds, 128, 2, 3, 11, false).unwrap();
        let registry = Arc::new(ModelRegistry::new());
        registry.load_bytes("toy", &b.to_bytes().unwrap()).unwrap();
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            read_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        };
        let handle = serve(cfg, registry.clone()).unwrap();
        (handle, registry)
    }

    fn roundtrip(stream: &mut TcpStream, req: &str) -> String {
        writeln!(stream, "{req}").unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }

    #[test]
    fn health_predict_and_errors_over_loopback() {
        let (handle, _registry) = start_server();
        let mut s = TcpStream::connect(handle.local_addr()).unwrap();
        assert_eq!(roundtrip(&mut s, "health"), "ok");
        let reply = roundtrip(&mut s, "predict toy 3.0,4.0");
        assert!(reply.starts_with("ok "), "{reply}");
        assert!(reply[3..].parse::<f32>().is_ok(), "{reply}");
        assert_eq!(
            roundtrip(&mut s, "predict ghost 1,2"),
            "err unknown model ghost"
        );
        let bad = roundtrip(&mut s, "predict toy 1,abc");
        assert_eq!(bad, "err malformed feature row");
        let unknown = roundtrip(&mut s, "frobnicate");
        assert!(unknown.starts_with("err unknown command"), "{unknown}");
        let stats = handle.shutdown();
        assert!(!stats.is_empty());
        assert!(stats[0].contains("ok=1"), "{stats:?}");
    }

    #[test]
    fn stats_lists_models_and_counters() {
        let (handle, _registry) = start_server();
        let mut s = TcpStream::connect(handle.local_addr()).unwrap();
        let _ = roundtrip(&mut s, "predict toy 1.0,2.0");
        writeln!(s, "stats").unwrap();
        s.flush().unwrap();
        let mut reader = BufReader::new(s.try_clone().unwrap());
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end().to_string();
            let done = line == "ok";
            lines.push(line);
            if done {
                break;
            }
        }
        assert!(
            lines.iter().any(|l| l.starts_with("model toy v1")),
            "{lines:?}"
        );
        assert!(
            lines
                .iter()
                .any(|l| l.starts_with("stat toy ") && l.contains("ok=1")),
            "{lines:?}"
        );
        assert!(lines.iter().any(|l| l.starts_with("server ")), "{lines:?}");
        handle.shutdown();
    }

    #[test]
    fn quit_closes_connection() {
        let (handle, _registry) = start_server();
        let mut s = TcpStream::connect(handle.local_addr()).unwrap();
        assert_eq!(roundtrip(&mut s, "quit"), "ok");
        let mut reader = BufReader::new(s);
        let mut line = String::new();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0, "server must close");
        handle.shutdown();
    }
}
