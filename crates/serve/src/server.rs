//! Line-oriented TCP front-end.
//!
//! Wire protocol (one request per line, one reply per line unless noted):
//!
//! ```text
//! predict <model> <f32,f32,...>   →  ok <y> | degraded <y> | busy | draining | err <reason>
//! reload <model> <path>           →  ok reloaded <model> v<version>
//! list                            →  model lines (name-sorted), then ok
//! train-status                    →  ok train ... (needs an attached trainer)
//! sweep                           →  ok swept checked=N corrupted=N rolled_back=N
//! inject <fault> [...]            →  ok ... (only with ServerConfig::enable_inject)
//! health                          →  ok
//! stats                           →  model/stat lines, then ok
//! quit                            →  ok (and the connection closes)
//! ```
//!
//! # Graceful degradation and overload behavior
//!
//! A `predict` that cannot take the full-precision path — the reply timed
//! out, the worker died mid-batch, the row's deadline expired in the
//! queue, the adaptive shed controller demoted traffic, or the model is
//! flagged corrupt — is answered through the quantised binary path (§3.2)
//! **inline on the connection thread** and tagged `degraded <y>` instead
//! of erroring. Every request gets a well-formed reply; `err` is reserved
//! for requests that are themselves invalid (unknown model, malformed or
//! non-finite features) or for servers that cannot produce any estimate
//! at all.
//!
//! Admission control is explicit: a full queue answers `busy` (back off
//! and retry), a shutting-down server answers `draining` (go elsewhere),
//! and a connection over [`ServerConfig::max_connections`] receives a
//! single `busy` line before the socket closes. When
//! [`ServerConfig::shed`] is enabled, sustained queue pressure (windowed
//! p95 queue wait above the demote threshold) routes new requests through
//! the degraded tier until the probe p95 recovers.
//!
//! Idle connections are closed after the configured read timeout.
//! Shutdown is graceful: the listener stops accepting, rows still queued
//! are answered `draining`, in-flight batches complete, and open
//! connections are joined before the worker pool exits.

use crate::batcher::{Batcher, BatcherConfig, EnqueueResult};
use crate::faults::FaultInjector;
use crate::metrics::{MetricsHub, ModelMetrics};
use crate::registry::{ModelMeta, ModelRegistry, ServedModel};
use crate::shed::{ShedConfig, ShedController};
use crate::status::TrainStatus;
use crate::worker::{WorkError, WorkItem, WorkerPool};
use crate::ServeError;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration for [`serve`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878`. Port `0` picks a free port
    /// (the bound address is reported by [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Worker threads running model predictions.
    pub workers: usize,
    /// Row-parallelism inside each model call: prediction batches are split
    /// across this many scoped threads with per-row arithmetic unchanged
    /// (bit-identical results). `0` means "use available parallelism";
    /// `1` is the exact old sequential behavior. Applied to every model in
    /// the registry at startup and inherited by later loads and reloads.
    pub threads: usize,
    /// Trigonometry mode for encoding ([`hdc::TrigMode::Exact`] by
    /// default). `Fast` swaps `sin`/`cos` for a range-reduced polynomial
    /// with a documented error bound
    /// ([`hdc::kernels::FAST_TRIG_MAX_ABS_ERROR`]) in exchange for
    /// throughput. Applied to every model in the registry at startup and
    /// inherited by later loads and reloads; canary replays always force
    /// `Exact`, so integrity checks stay bit-exact.
    pub trig: hdc::TrigMode,
    /// Micro-batching knobs.
    pub batcher: BatcherConfig,
    /// Idle connections are closed after this long without a request.
    pub read_timeout: Duration,
    /// How long a connection waits for its prediction before falling back
    /// to the degraded path.
    pub reply_timeout: Duration,
    /// Run a registry integrity sweep this often (`None` disables the
    /// background sweeper; the `sweep` protocol command always works).
    pub sweep_interval: Option<Duration>,
    /// Accept the `inject` protocol command. Off by default: fault
    /// injection is a test/chaos facility, not a production surface.
    pub enable_inject: bool,
    /// Seed for the server's [`FaultInjector`] (only meaningful with
    /// `enable_inject` or when tests drive the injector directly).
    pub fault_seed: u64,
    /// Status block of an in-process streaming trainer, rendered by the
    /// `train-status` protocol command. `None` (the default) makes that
    /// command answer `err no trainer attached`.
    pub train_status: Option<Arc<TrainStatus>>,
    /// Per-request deadline, measured from enqueue. A row that is still
    /// queued (or still waiting in an assembled batch) when its deadline
    /// passes is shed before any model arithmetic runs and answered
    /// through the degraded path. `None` (the default) disables expiry.
    pub deadline: Option<Duration>,
    /// Hard cap on concurrently open client connections. A connection
    /// accepted over the cap receives a single `busy` line and is closed
    /// (counted in [`MetricsHub::connections_rejected`]). `0` (the
    /// default) means unlimited.
    pub max_connections: usize,
    /// Adaptive shed controller thresholds. When set, sustained queue
    /// pressure demotes new `predict` traffic to the §3.2 degraded tier
    /// (see [`ShedController`]); `None` disables adaptive shedding.
    pub shed: Option<ShedConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            workers: 4,
            threads: 1,
            trig: hdc::TrigMode::Exact,
            batcher: BatcherConfig::default(),
            read_timeout: Duration::from_secs(30),
            reply_timeout: Duration::from_secs(10),
            sweep_interval: None,
            enable_inject: false,
            fault_seed: 0,
            train_status: None,
            deadline: None,
            max_connections: 0,
            shed: Some(ShedConfig::default()),
        }
    }
}

/// Shared state every connection thread works against.
struct Ctx {
    registry: Arc<ModelRegistry>,
    hub: Arc<MetricsHub>,
    batcher: Arc<Batcher>,
    injector: Arc<FaultInjector>,
    stop: Arc<AtomicBool>,
    reply_timeout: Duration,
    enable_inject: bool,
    train_status: Option<Arc<TrainStatus>>,
    deadline: Option<Duration>,
    shed: Option<Arc<ShedController>>,
}

/// Running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    sweeper_thread: Option<JoinHandle<()>>,
    hub: Arc<MetricsHub>,
    batcher: Arc<Batcher>,
    injector: Arc<FaultInjector>,
    shed: Option<Arc<ShedController>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

/// One `model …` inventory line (shared by `stats` and `list`, and by the
/// RGNP front-end so both protocols render byte-identical inventories).
/// The registry returns metas name-sorted, so replies built from it are
/// deterministic for a given set of loaded models.
pub fn model_line(m: &ModelMeta) -> String {
    format!(
        "model {} v{} hash={} dim={} k={} cluster={} prediction={} bytes={} canary={} mem={}",
        m.name,
        m.version,
        m.hash,
        m.dim,
        m.models,
        m.cluster_mode,
        m.prediction_mode,
        m.bytes,
        m.canary_rows,
        m.mem,
    )
}

/// The `stats` payload: registry inventory plus per-model counters.
/// Shared with the RGNP front-end (`reghd-net`), whose `stats` opcode must
/// return the same lines byte-for-byte.
pub fn render_stats(
    registry: &ModelRegistry,
    hub: &MetricsHub,
    queue_depth: usize,
    shed: Option<&ShedController>,
) -> Vec<String> {
    let mut lines: Vec<String> = registry.list().iter().map(model_line).collect();
    lines.extend(hub.render_all());
    if let Some(store) = registry.resolver_stats() {
        lines.push(format!("store {store}"));
        let h = registry.resolver_health();
        lines.push(format!(
            "resolver retries={} failures={} breaker_trips={} short_circuits={} \
             open_breakers={}",
            h.retries, h.failures, h.breaker_trips, h.short_circuits, h.open_breakers,
        ));
    }
    let (tier, demotions, promotions) = match shed {
        Some(s) => (
            if s.is_degraded() { "degraded" } else { "full" },
            s.demotions(),
            s.promotions(),
        ),
        None => ("full", 0, 0),
    };
    lines.push(format!(
        "server connections={} connections_rejected={} bad_requests={} queue_depth={} \
         canary_failures={} rollbacks={} sweeps={} tier={tier} demotions={demotions} \
         promotions={promotions}",
        hub.connections.load(Ordering::Relaxed),
        hub.connections_rejected.load(Ordering::Relaxed),
        hub.bad_requests.load(Ordering::Relaxed),
        queue_depth,
        hub.canary_failures.load(Ordering::Relaxed),
        hub.rollbacks.load(Ordering::Relaxed),
        hub.sweeps.load(Ordering::Relaxed),
    ));
    lines
}

fn stats_lines(ctx: &Ctx) -> Vec<String> {
    render_stats(
        &ctx.registry,
        &ctx.hub,
        ctx.batcher.depth(),
        ctx.shed.as_deref(),
    )
}

/// Answers one row through the quantised binary fallback (§3.2),
/// recording the outcome into `metrics`. Shared by the line front-end
/// (rendered as a `degraded …` line) and the RGNP front-end (binary f32),
/// so both protocols serve bit-identical degraded values.
///
/// # Errors
///
/// The message of the failed model call (or a non-finite estimate); the
/// caller renders it as a protocol error.
pub fn degraded_value(
    served: &ServedModel,
    metrics: &ModelMetrics,
    row: &[f32],
) -> Result<f32, String> {
    match served.bundle.predict_degraded(&[row.to_vec()]) {
        Ok(preds) if preds.first().is_some_and(|p| p.is_finite()) => {
            metrics.record_degraded();
            Ok(preds[0])
        }
        Ok(_) => {
            metrics.record_error();
            Err("degraded prediction not finite".to_string())
        }
        Err(msg) => {
            metrics.record_error();
            Err(msg)
        }
    }
}

/// Answers one row through the quantised binary fallback, tagging the
/// reply `degraded`. Runs inline on the connection thread so it cannot be
/// starved by the very saturation or faults it is compensating for.
fn degraded_reply(served: &ServedModel, metrics: &ModelMetrics, row: &[f32]) -> String {
    match degraded_value(served, metrics, row) {
        Ok(y) => format!("degraded {y}"),
        Err(msg) => format!("err {msg}"),
    }
}

/// Runs one registry sweep and folds the result into the hub counters.
fn run_sweep(registry: &ModelRegistry, hub: &MetricsHub) -> crate::registry::SweepReport {
    let report = registry.sweep();
    hub.sweeps.fetch_add(1, Ordering::Relaxed);
    hub.rollbacks
        .fetch_add(report.rolled_back as u64, Ordering::Relaxed);
    report
}

/// Parses and executes an `inject` command (the server's chaos surface).
fn handle_inject(parts: &mut std::str::SplitWhitespace<'_>, ctx: &Ctx) -> String {
    const USAGE: &str = "err usage: inject bitflip <model> <rate> <seed> | delay <ms> | \
                         kill <n> | panic <n> | garble <rate> | clear";
    match parts.next() {
        Some("bitflip") => {
            let (Some(name), Some(rate), Some(seed)) = (parts.next(), parts.next(), parts.next())
            else {
                return USAGE.to_string();
            };
            let (Ok(rate), Ok(seed)) = (rate.parse::<f64>(), seed.parse::<u64>()) else {
                return USAGE.to_string();
            };
            if !(0.0..=1.0).contains(&rate) {
                return "err rate must be in [0,1]".to_string();
            }
            match ctx.registry.inject_model_faults(name, rate, seed) {
                Ok(flips) => format!("ok injected flips={flips}"),
                Err(e) => format!("err {e}"),
            }
        }
        Some("delay") => match parts.next().and_then(|t| t.parse::<u64>().ok()) {
            Some(ms) => {
                ctx.injector.set_worker_delay(Duration::from_millis(ms));
                "ok".to_string()
            }
            None => USAGE.to_string(),
        },
        Some("kill") => match parts.next().and_then(|t| t.parse::<usize>().ok()) {
            Some(n) => {
                ctx.injector.kill_workers(n);
                "ok".to_string()
            }
            None => USAGE.to_string(),
        },
        Some("panic") => match parts.next().and_then(|t| t.parse::<usize>().ok()) {
            Some(n) => {
                ctx.injector.panic_batches(n);
                "ok".to_string()
            }
            None => USAGE.to_string(),
        },
        Some("garble") => match parts.next().and_then(|t| t.parse::<f64>().ok()) {
            Some(rate) if (0.0..=1.0).contains(&rate) => {
                ctx.injector.set_garble_rate(rate);
                "ok".to_string()
            }
            Some(_) => "err rate must be in [0,1]".to_string(),
            None => USAGE.to_string(),
        },
        Some("clear") => {
            ctx.injector.clear();
            "ok".to_string()
        }
        _ => USAGE.to_string(),
    }
}

/// Handles one request line; returns the reply lines and whether the
/// connection should close afterwards.
fn handle_line(line: &str, ctx: &Ctx) -> (Vec<String>, bool) {
    let mut parts = line.split_whitespace();
    match parts.next() {
        Some("health") => (vec!["ok".to_string()], false),
        Some("quit") => (vec!["ok".to_string()], true),
        Some("stats") => {
            let mut lines = stats_lines(ctx);
            lines.push("ok".to_string());
            (lines, false)
        }
        Some("list") => {
            let mut lines: Vec<String> = ctx.registry.list().iter().map(model_line).collect();
            lines.push("ok".to_string());
            (lines, false)
        }
        Some("train-status") => match &ctx.train_status {
            Some(status) => (vec![format!("ok {}", status.summary())], false),
            None => (vec!["err no trainer attached".to_string()], false),
        },
        Some("sweep") => {
            let r = run_sweep(&ctx.registry, &ctx.hub);
            (
                vec![format!(
                    "ok swept checked={} corrupted={} rolled_back={}",
                    r.checked, r.corrupted, r.rolled_back
                )],
                false,
            )
        }
        Some("inject") => {
            if !ctx.enable_inject {
                return (vec!["err inject disabled".to_string()], false);
            }
            (vec![handle_inject(&mut parts, ctx)], false)
        }
        Some("reload") => {
            let (Some(name), Some(path)) = (parts.next(), parts.next()) else {
                ctx.hub.bad_requests.fetch_add(1, Ordering::Relaxed);
                return (vec!["err usage: reload <model> <path>".to_string()], false);
            };
            match ctx.registry.reload(name, path) {
                Ok(meta) => (
                    vec![format!("ok reloaded {} v{}", meta.name, meta.version)],
                    false,
                ),
                Err(e) => {
                    if matches!(e, ServeError::Canary(_)) {
                        ctx.hub.canary_failures.fetch_add(1, Ordering::Relaxed);
                    }
                    (vec![format!("err {e}")], false)
                }
            }
        }
        Some("predict") => {
            let (Some(name), Some(csv)) = (parts.next(), parts.next()) else {
                ctx.hub.bad_requests.fetch_add(1, Ordering::Relaxed);
                return (
                    vec!["err usage: predict <model> <f32,f32,...>".to_string()],
                    false,
                );
            };
            let Some(served) = ctx.registry.get(name) else {
                return (vec![format!("err unknown model {name}")], false);
            };
            let row: Result<Vec<f32>, _> =
                csv.split(',').map(|t| t.trim().parse::<f32>()).collect();
            let row = match row {
                Ok(r) if !r.is_empty() => r,
                _ => {
                    ctx.hub.bad_requests.fetch_add(1, Ordering::Relaxed);
                    return (vec!["err malformed feature row".to_string()], false);
                }
            };
            if !row.iter().all(|v| v.is_finite()) {
                // NaN/Inf would poison the whole encoded hypervector; this
                // is a client bug, not a degradable server fault.
                ctx.hub.bad_requests.fetch_add(1, Ordering::Relaxed);
                return (vec!["err non-finite feature value".to_string()], false);
            }
            let metrics = ctx.hub.for_model(name);
            if served.is_corrupt() {
                // Flagged by a sweep that had no distinct last-good version
                // to roll back to: serve the §3.2 binary path, whose
                // holographic redundancy is the paper's robustness story.
                return (vec![degraded_reply(&served, &metrics, &row)], false);
            }
            if ctx.shed.as_ref().is_some_and(|s| s.should_degrade()) {
                // Adaptive shed: sustained queue pressure demoted traffic
                // to the degraded tier before the queue can overflow. The
                // binary path is cheap enough to run inline here.
                return (vec![degraded_reply(&served, &metrics, &row)], false);
            }
            let (tx, rx) = sync_channel(1);
            let now = Instant::now();
            let item = WorkItem {
                row: row.clone(),
                enqueued_at: now,
                deadline: ctx.deadline.map(|d| now + d),
                reply: tx.into(),
            };
            match ctx.batcher.enqueue(served.clone(), metrics.clone(), item) {
                EnqueueResult::Accepted => {}
                EnqueueResult::Full => {
                    // Queue saturated (the shed is already recorded):
                    // explicit admission-control refusal so the client
                    // knows to back off.
                    return (vec!["busy".to_string()], false);
                }
                EnqueueResult::Stopping => {
                    return (vec!["draining".to_string()], false);
                }
            }
            match rx.recv_timeout(ctx.reply_timeout) {
                Ok(Ok(y)) => (vec![format!("ok {y}")], false),
                Ok(Err(WorkError::Expired)) => {
                    // The deadline passed while the row waited; the
                    // full-precision answer would arrive too late, but the
                    // cheap estimate can still go out now.
                    (vec![degraded_reply(&served, &metrics, &row)], false)
                }
                Ok(Err(WorkError::Draining)) => (vec!["draining".to_string()], false),
                Ok(Err(WorkError::Failed(msg))) => (vec![format!("err {msg}")], false),
                Ok(Err(WorkError::Dropped))
                | Err(RecvTimeoutError::Timeout)
                | Err(RecvTimeoutError::Disconnected) => {
                    // Timed out, or the worker died mid-batch (killed or
                    // panicked — the reply sender dropped without an
                    // answer). Either way: degrade, don't error.
                    (vec![degraded_reply(&served, &metrics, &row)], false)
                }
            }
        }
        Some(other) => {
            ctx.hub.bad_requests.fetch_add(1, Ordering::Relaxed);
            (vec![format!("err unknown command {other}")], false)
        }
        None => (Vec::new(), false), // blank line: ignore
    }
}

fn handle_conn(stream: TcpStream, ctx: &Ctx, read_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => BufWriter::new(w),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                // Drain every complete request line the reader has already
                // buffered before flushing once: a pipelined client that
                // sent N requests in one segment gets its N replies in one
                // write syscall instead of N.
                let mut close = false;
                loop {
                    // Socket-level fault injection: the garbled request
                    // still parses as one line, so the damage surfaces as a
                    // typed protocol error rather than a framing break.
                    ctx.injector.garble_line(&mut line);
                    let (replies, c) = handle_line(line.trim_end(), ctx);
                    for reply in replies {
                        if writeln!(writer, "{reply}").is_err() {
                            return;
                        }
                    }
                    if c {
                        close = true;
                        break;
                    }
                    if !reader.buffer().contains(&b'\n') {
                        break;
                    }
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(n) if n > 0 => {}
                        _ => {
                            close = true;
                            break;
                        }
                    }
                }
                if writer.flush().is_err() || close {
                    return;
                }
            }
            // Idle past the read timeout, or the server is stopping.
            Err(_) => return,
        }
        if ctx.stop.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Binds `cfg.addr` and starts serving `registry` until
/// [`ServerHandle::shutdown`] (or drop).
///
/// # Errors
///
/// [`ServeError::Io`] when the address cannot be bound,
/// [`ServeError::Spawn`] when a background thread cannot be created.
pub fn serve(cfg: ServerConfig, registry: Arc<ModelRegistry>) -> Result<ServerHandle, ServeError> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    // Models already loaded pick the knobs up now; later loads inherit
    // them from the registry.
    registry.set_default_threads(cfg.threads);
    registry.set_default_trig(cfg.trig);

    let hub = Arc::new(MetricsHub::new());
    let injector = Arc::new(FaultInjector::new(cfg.fault_seed));
    let pool = Arc::new(WorkerPool::with_injector(
        cfg.workers,
        cfg.workers * 2,
        injector.clone(),
    )?);
    let shed = cfg.shed.clone().map(|c| Arc::new(ShedController::new(c)));
    let batcher = Arc::new(Batcher::with_shed(cfg.batcher.clone(), pool, shed.clone())?);
    let stop = Arc::new(AtomicBool::new(false));

    let ctx = Arc::new(Ctx {
        registry: registry.clone(),
        hub: hub.clone(),
        batcher: batcher.clone(),
        injector: injector.clone(),
        stop: stop.clone(),
        reply_timeout: cfg.reply_timeout,
        enable_inject: cfg.enable_inject,
        train_status: cfg.train_status.clone(),
        deadline: cfg.deadline,
        shed: shed.clone(),
    });
    let read_timeout = cfg.read_timeout;
    let max_connections = cfg.max_connections;
    let stop_accept = stop.clone();
    let accept_thread = std::thread::Builder::new()
        .name("reghd-accept".to_string())
        .spawn(move || {
            /// Decrements the live-connection count however the thread
            /// exits (return or panic).
            struct ConnGuard(Arc<AtomicUsize>);
            impl Drop for ConnGuard {
                fn drop(&mut self) {
                    self.0.fetch_sub(1, Ordering::SeqCst);
                }
            }
            let active = Arc::new(AtomicUsize::new(0));
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            while !stop_accept.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((mut stream, _peer)) => {
                        if max_connections > 0 && active.load(Ordering::SeqCst) >= max_connections {
                            // Over the cap: one explicit `busy` line, then
                            // close. Cheaper and clearer than accepting a
                            // connection the server cannot serve.
                            ctx.hub.connections_rejected.fetch_add(1, Ordering::Relaxed);
                            let _ = writeln!(stream, "busy");
                            continue;
                        }
                        ctx.hub.connections.fetch_add(1, Ordering::Relaxed);
                        active.fetch_add(1, Ordering::SeqCst);
                        let guard = ConnGuard(active.clone());
                        let ctx = ctx.clone();
                        let spawned = std::thread::Builder::new()
                            .name("reghd-conn".to_string())
                            .spawn(move || {
                                let _guard = guard;
                                handle_conn(stream, &ctx, read_timeout);
                            });
                        // On spawn failure (thread exhaustion) the stream —
                        // and the guard — are simply dropped: the connection
                        // closes but the server stays alive.
                        if let Ok(h) = spawned {
                            conns.push(h);
                            conns.retain(|h| !h.is_finished());
                        }
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            for h in conns {
                let _ = h.join();
            }
        })
        .map_err(ServeError::Spawn)?;

    let sweeper_thread = match cfg.sweep_interval {
        Some(interval) => {
            let registry = registry.clone();
            let hub = hub.clone();
            let stop = stop.clone();
            Some(
                std::thread::Builder::new()
                    .name("reghd-sweeper".to_string())
                    .spawn(move || {
                        let mut since_sweep = Duration::ZERO;
                        let tick =
                            Duration::from_millis(10).min(interval.max(Duration::from_millis(1)));
                        while !stop.load(Ordering::SeqCst) {
                            std::thread::sleep(tick);
                            since_sweep += tick;
                            if since_sweep >= interval {
                                since_sweep = Duration::ZERO;
                                run_sweep(&registry, &hub);
                            }
                        }
                    })
                    .map_err(ServeError::Spawn)?,
            )
        }
        None => None,
    };

    Ok(ServerHandle {
        local_addr,
        stop,
        accept_thread: Some(accept_thread),
        sweeper_thread,
        hub,
        batcher,
        injector,
        shed,
    })
}

impl ServerHandle {
    /// The address the server actually bound (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's metrics hub (for inspection in tests and benches).
    pub fn metrics(&self) -> Arc<MetricsHub> {
        self.hub.clone()
    }

    /// The server's fault injector — lets chaos tests arm faults without
    /// going through the `inject` protocol command.
    pub fn injector(&self) -> Arc<FaultInjector> {
        self.injector.clone()
    }

    /// The adaptive shed controller, when [`ServerConfig::shed`] enabled
    /// one — lets tests and the chaos harness observe tier transitions.
    pub fn shed(&self) -> Option<Arc<ShedController>> {
        self.shed.clone()
    }

    /// Gracefully stops the server: no new connections, open connections
    /// joined, queued rows drained through the pool. Returns the final
    /// `stat` lines so callers can log them.
    pub fn shutdown(mut self) -> Vec<String> {
        self.stop_and_join();
        self.hub.render_all()
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Drain the batcher *before* joining connection threads: clients
        // blocked on a reply then receive an explicit `draining` line
        // (rows still queued) or their in-flight answer, instead of a
        // dropped connection.
        self.batcher.begin_drain();
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        if let Some(h) = self.sweeper_thread.take() {
            let _ = h.join();
        }
        self.batcher.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle;
    use datasets::Dataset;
    use std::io::BufRead;

    fn toy_registry() -> Arc<ModelRegistry> {
        let features: Vec<Vec<f32>> = (0..40).map(|i| vec![i as f32, (i * 2) as f32]).collect();
        let targets: Vec<f32> = features.iter().map(|r| r[0] + r[1]).collect();
        let ds = Dataset::new("toy", features, targets);
        let (b, _) = bundle::train(&ds, 128, 2, 3, 11, false).unwrap();
        let registry = Arc::new(ModelRegistry::new());
        registry.load_bytes("toy", &b.to_bytes().unwrap()).unwrap();
        registry
    }

    fn start_server() -> (ServerHandle, Arc<ModelRegistry>) {
        let registry = toy_registry();
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            read_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        };
        let handle = serve(cfg, registry.clone()).unwrap();
        (handle, registry)
    }

    fn roundtrip(stream: &mut TcpStream, req: &str) -> String {
        writeln!(stream, "{req}").unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }

    #[test]
    fn health_predict_and_errors_over_loopback() {
        let (handle, _registry) = start_server();
        let mut s = TcpStream::connect(handle.local_addr()).unwrap();
        assert_eq!(roundtrip(&mut s, "health"), "ok");
        let reply = roundtrip(&mut s, "predict toy 3.0,4.0");
        assert!(reply.starts_with("ok "), "{reply}");
        assert!(reply[3..].parse::<f32>().is_ok(), "{reply}");
        assert_eq!(
            roundtrip(&mut s, "predict ghost 1,2"),
            "err unknown model ghost"
        );
        let bad = roundtrip(&mut s, "predict toy 1,abc");
        assert_eq!(bad, "err malformed feature row");
        let unknown = roundtrip(&mut s, "frobnicate");
        assert!(unknown.starts_with("err unknown command"), "{unknown}");
        let stats = handle.shutdown();
        assert!(!stats.is_empty());
        assert!(stats[0].contains("ok=1"), "{stats:?}");
    }

    #[test]
    fn non_finite_features_are_protocol_errors() {
        let (handle, _registry) = start_server();
        let mut s = TcpStream::connect(handle.local_addr()).unwrap();
        for req in [
            "predict toy NaN,1.0",
            "predict toy 1.0,inf",
            "predict toy -inf,0.0",
        ] {
            assert_eq!(roundtrip(&mut s, req), "err non-finite feature value");
        }
        // The model itself is untouched — a clean row still predicts.
        let reply = roundtrip(&mut s, "predict toy 2.0,4.0");
        assert!(reply.starts_with("ok "), "{reply}");
        assert!(
            handle.metrics().bad_requests.load(Ordering::Relaxed) >= 3,
            "non-finite rows must count as bad requests"
        );
        handle.shutdown();
    }

    #[test]
    fn corrupt_flagged_model_serves_degraded() {
        let (handle, registry) = start_server();
        // Simulate a sweep that found corruption but had nothing to roll
        // back to: the serving Arc gets flagged in place.
        registry
            .get("toy")
            .unwrap()
            .corrupt
            .store(true, Ordering::Relaxed);
        let mut s = TcpStream::connect(handle.local_addr()).unwrap();
        let reply = roundtrip(&mut s, "predict toy 3.0,4.0");
        assert!(reply.starts_with("degraded "), "{reply}");
        let y: f32 = reply["degraded ".len()..].parse().unwrap();
        assert!(y.is_finite());
        let stats = handle.shutdown();
        assert!(stats[0].contains("degraded=1"), "{stats:?}");
    }

    #[test]
    fn sweep_command_reports_and_inject_is_gated() {
        let (handle, _registry) = start_server();
        let mut s = TcpStream::connect(handle.local_addr()).unwrap();
        assert_eq!(
            roundtrip(&mut s, "sweep"),
            "ok swept checked=1 corrupted=0 rolled_back=0"
        );
        // inject is refused unless explicitly enabled.
        assert_eq!(roundtrip(&mut s, "inject delay 10"), "err inject disabled");
        handle.shutdown();
    }

    #[test]
    fn inject_bitflip_sweep_recovers_over_protocol() {
        let registry = toy_registry();
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            read_timeout: Duration::from_secs(5),
            enable_inject: true,
            ..ServerConfig::default()
        };
        let handle = serve(cfg, registry.clone()).unwrap();
        let mut s = TcpStream::connect(handle.local_addr()).unwrap();

        let clean = roundtrip(&mut s, "predict toy 3.0,4.0");
        let reply = roundtrip(&mut s, "inject bitflip toy 0.3 7");
        assert!(reply.starts_with("ok injected flips="), "{reply}");
        let faulty = roundtrip(&mut s, "predict toy 3.0,4.0");
        assert!(faulty.starts_with("ok "), "{faulty}");
        assert_ne!(clean, faulty, "bit flips must perturb the prediction");

        let sweep = roundtrip(&mut s, "sweep");
        assert_eq!(sweep, "ok swept checked=1 corrupted=1 rolled_back=1");
        let recovered = roundtrip(&mut s, "predict toy 3.0,4.0");
        assert_eq!(recovered, clean, "rollback must be bit-exact");
        handle.shutdown();
    }

    #[test]
    fn stats_lists_models_and_counters() {
        let (handle, _registry) = start_server();
        let mut s = TcpStream::connect(handle.local_addr()).unwrap();
        let _ = roundtrip(&mut s, "predict toy 1.0,2.0");
        writeln!(s, "stats").unwrap();
        s.flush().unwrap();
        let mut reader = BufReader::new(s.try_clone().unwrap());
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end().to_string();
            let done = line == "ok";
            lines.push(line);
            if done {
                break;
            }
        }
        assert!(
            lines.iter().any(|l| l.starts_with("model toy v1")),
            "{lines:?}"
        );
        assert!(
            lines
                .iter()
                .any(|l| l.starts_with("stat toy ") && l.contains("ok=1")),
            "{lines:?}"
        );
        assert!(
            lines
                .iter()
                .any(|l| l.starts_with("server ") && l.contains("sweeps=")),
            "{lines:?}"
        );
        assert!(
            lines
                .iter()
                .any(|l| l.contains("tier=full") && l.contains("connections_rejected=0")),
            "{lines:?}"
        );
        handle.shutdown();
    }

    #[test]
    fn degraded_reply_is_bit_identical_to_direct_degraded_predict() {
        let (handle, registry) = start_server();
        let served = registry.get("toy").unwrap();
        served.corrupt.store(true, Ordering::Relaxed);
        let row = vec![3.0f32, 4.0];
        let expect = served.bundle.predict_degraded(&[row]).unwrap()[0];
        let mut s = TcpStream::connect(handle.local_addr()).unwrap();
        let reply = roundtrip(&mut s, "predict toy 3.0,4.0");
        assert_eq!(reply, format!("degraded {expect}"));
        let got: f32 = reply["degraded ".len()..].parse().unwrap();
        assert_eq!(
            got.to_bits(),
            expect.to_bits(),
            "protocol degraded reply must match predict_degraded bit-for-bit"
        );
        handle.shutdown();
    }

    #[test]
    fn zero_deadline_expires_rows_pre_compute_and_degrades() {
        let registry = toy_registry();
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            read_timeout: Duration::from_secs(5),
            deadline: Some(Duration::ZERO),
            ..ServerConfig::default()
        };
        let handle = serve(cfg, registry).unwrap();
        let mut s = TcpStream::connect(handle.local_addr()).unwrap();
        let reply = roundtrip(&mut s, "predict toy 3.0,4.0");
        assert!(reply.starts_with("degraded "), "{reply}");
        let m = handle.metrics().for_model("toy");
        assert_eq!(m.expired.load(Ordering::Relaxed), 1);
        assert_eq!(
            m.ok.load(Ordering::Relaxed),
            0,
            "an expired row must never reach the full-precision path"
        );
        handle.shutdown();
    }

    #[test]
    fn connection_cap_rejects_overflow_with_busy() {
        let registry = toy_registry();
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            read_timeout: Duration::from_secs(5),
            max_connections: 1,
            ..ServerConfig::default()
        };
        let handle = serve(cfg, registry).unwrap();
        let mut s1 = TcpStream::connect(handle.local_addr()).unwrap();
        assert_eq!(roundtrip(&mut s1, "health"), "ok");

        // The slot is taken: the next connection gets one `busy` line and
        // a closed socket.
        let s2 = TcpStream::connect(handle.local_addr()).unwrap();
        let mut reader = BufReader::new(s2);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "busy");
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0, "socket must close");
        assert_eq!(
            handle
                .metrics()
                .connections_rejected
                .load(Ordering::Relaxed),
            1
        );

        // Closing the admitted connection frees the slot again.
        drop(s1);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let mut s3 = TcpStream::connect(handle.local_addr()).unwrap();
            let _ = writeln!(s3, "health");
            let _ = s3.flush();
            let mut r = BufReader::new(s3);
            let mut l = String::new();
            let _ = r.read_line(&mut l);
            if l.trim_end() == "ok" {
                break;
            }
            assert!(Instant::now() < deadline, "slot must free after close");
            std::thread::sleep(Duration::from_millis(10));
        }
        handle.shutdown();
    }

    #[test]
    fn overload_replies_busy_and_drain_replies_draining() {
        // One worker pinned on a slow batch, a 2-row queue, and a long
        // coalescing window: rows 2–3 wait in the queue, row 4 is refused
        // with `busy`, and shutdown answers the queued rows `draining`.
        let registry = toy_registry();
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            read_timeout: Duration::from_secs(10),
            batcher: BatcherConfig {
                max_batch: 32,
                max_wait: Duration::from_secs(5),
                queue_cap: 2,
            },
            ..ServerConfig::default()
        };
        let handle = serve(cfg, registry).unwrap();
        handle
            .injector()
            .set_worker_delay(Duration::from_millis(1500));
        let addr = handle.local_addr();
        let client = |row: &'static str| {
            std::thread::spawn(move || {
                let mut s = TcpStream::connect(addr).unwrap();
                roundtrip(&mut s, &format!("predict toy {row}"))
            })
        };
        let c1 = client("1.0,2.0");
        std::thread::sleep(Duration::from_millis(200));
        let c2 = client("3.0,4.0");
        let c3 = client("5.0,6.0");
        std::thread::sleep(Duration::from_millis(200));

        // Queue full (rows 2–3): explicit admission-control refusal.
        let mut s = TcpStream::connect(addr).unwrap();
        assert_eq!(roundtrip(&mut s, "predict toy 7.0,8.0"), "busy");

        let hub = handle.metrics();
        handle.shutdown();
        let r1 = c1.join().unwrap();
        assert!(r1.starts_with("ok "), "{r1}");
        assert_eq!(c2.join().unwrap(), "draining");
        assert_eq!(c3.join().unwrap(), "draining");
        let m = hub.for_model("toy");
        assert_eq!(m.shed.load(Ordering::Relaxed), 1);
        assert_eq!(
            m.stopped.load(Ordering::Relaxed),
            2,
            "queued rows answered at drain must count as stopped, not shed"
        );
    }

    fn read_until_ok(s: &mut TcpStream, req: &str) -> Vec<String> {
        writeln!(s, "{req}").unwrap();
        s.flush().unwrap();
        let mut reader = BufReader::new(s.try_clone().unwrap());
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end().to_string();
            let done = line == "ok" || line.starts_with("err");
            lines.push(line);
            if done {
                break;
            }
        }
        lines
    }

    #[test]
    fn list_replies_name_sorted() {
        let registry = toy_registry(); // loads "toy"
        let features: Vec<Vec<f32>> = (0..40).map(|i| vec![i as f32, (i * 3) as f32]).collect();
        let targets: Vec<f32> = features.iter().map(|r| r[0] - r[1]).collect();
        let ds = Dataset::new("extra", features, targets);
        let (b, _) = bundle::train(&ds, 128, 2, 3, 12, false).unwrap();
        registry
            .load_bytes("alpha", &b.to_bytes().unwrap())
            .unwrap();

        let cfg = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            read_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        };
        let handle = serve(cfg, registry).unwrap();
        let mut s = TcpStream::connect(handle.local_addr()).unwrap();
        let lines = read_until_ok(&mut s, "list");
        assert_eq!(lines.len(), 3, "{lines:?}");
        assert!(lines[0].starts_with("model alpha v1 "), "{lines:?}");
        assert!(lines[1].starts_with("model toy v1 "), "{lines:?}");
        assert_eq!(lines[2], "ok");
        handle.shutdown();
    }

    #[test]
    fn train_status_command_renders_attached_trainer() {
        let registry = toy_registry();
        // Without a trainer the command is a typed error.
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            read_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        };
        let handle = serve(cfg, registry.clone()).unwrap();
        let mut s = TcpStream::connect(handle.local_addr()).unwrap();
        assert_eq!(roundtrip(&mut s, "train-status"), "err no trainer attached");
        handle.shutdown();

        // With one attached, the live counters come back.
        let status = Arc::new(TrainStatus::new());
        status.record_sample(0.5);
        status.record_drift(0);
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            read_timeout: Duration::from_secs(5),
            train_status: Some(status.clone()),
            ..ServerConfig::default()
        };
        let handle = serve(cfg, registry).unwrap();
        let mut s = TcpStream::connect(handle.local_addr()).unwrap();
        let reply = roundtrip(&mut s, "train-status");
        assert!(reply.starts_with("ok train samples=1"), "{reply}");
        assert!(reply.contains("drift_events=1"), "{reply}");
        status.record_checkpoint();
        let reply = roundtrip(&mut s, "train-status");
        assert!(reply.contains("checkpoints=1"), "{reply}");
        handle.shutdown();
    }

    #[test]
    fn background_sweeper_rolls_back_injected_faults() {
        let registry = toy_registry();
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            read_timeout: Duration::from_secs(5),
            sweep_interval: Some(Duration::from_millis(25)),
            ..ServerConfig::default()
        };
        let handle = serve(cfg, registry.clone()).unwrap();
        registry.inject_model_faults("toy", 0.3, 5).unwrap();
        let hub = handle.metrics();
        let deadline = Instant::now() + Duration::from_secs(5);
        while hub.rollbacks.load(Ordering::Relaxed) == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(
            hub.rollbacks.load(Ordering::Relaxed) >= 1,
            "sweeper must roll the injected fault back"
        );
        assert!(hub.sweeps.load(Ordering::Relaxed) >= 1);
        handle.shutdown();
    }

    #[test]
    fn threaded_server_predictions_match_sequential() {
        // The --threads knob must not change a single reply byte: the
        // parallel schedule is bit-identical and f32 Display is
        // shortest-roundtrip, so the protocol strings are equal too.
        let rows = ["predict toy 3.0,4.0", "predict toy 10.5,-2.25"];
        let mut replies = Vec::new();
        for threads in [1usize, 4] {
            let registry = toy_registry();
            let cfg = ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 2,
                threads,
                read_timeout: Duration::from_secs(5),
                ..ServerConfig::default()
            };
            let handle = serve(cfg, registry.clone()).unwrap();
            assert_eq!(registry.default_threads(), threads);
            assert_eq!(
                registry.get("toy").unwrap().bundle.model().threads(),
                threads
            );
            let mut s = TcpStream::connect(handle.local_addr()).unwrap();
            let got: Vec<String> = rows.iter().map(|r| roundtrip(&mut s, r)).collect();
            assert!(got.iter().all(|r| r.starts_with("ok ")), "{got:?}");
            replies.push(got);
            handle.shutdown();
        }
        assert_eq!(replies[0], replies[1]);
    }

    #[test]
    fn fast_trig_server_predictions_stay_close_to_exact() {
        // --trig fast is allowed to move replies, but only within the
        // fast-trig error envelope — the replies must stay finite and
        // numerically close to the exact-mode answers.
        let rows = ["predict toy 3.0,4.0", "predict toy 10.5,-2.25"];
        let mut replies: Vec<Vec<f32>> = Vec::new();
        for trig in [hdc::TrigMode::Exact, hdc::TrigMode::Fast] {
            let registry = toy_registry();
            let cfg = ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 2,
                trig,
                read_timeout: Duration::from_secs(5),
                ..ServerConfig::default()
            };
            let handle = serve(cfg, registry.clone()).unwrap();
            assert_eq!(registry.default_trig(), trig);
            assert_eq!(
                registry.get("toy").unwrap().bundle.trig_mode(),
                trig,
                "startup must push the trig knob into loaded models"
            );
            let mut s = TcpStream::connect(handle.local_addr()).unwrap();
            let got: Vec<f32> = rows
                .iter()
                .map(|r| {
                    let reply = roundtrip(&mut s, r);
                    assert!(reply.starts_with("ok "), "{reply}");
                    reply[3..].parse().unwrap()
                })
                .collect();
            replies.push(got);
            handle.shutdown();
        }
        for (e, f) in replies[0].iter().zip(&replies[1]) {
            assert!(f.is_finite());
            assert!(
                (e - f).abs() <= 0.05 * (1.0 + e.abs()),
                "exact={e} fast={f}"
            );
        }
    }

    #[test]
    fn quit_closes_connection() {
        let (handle, _registry) = start_server();
        let mut s = TcpStream::connect(handle.local_addr()).unwrap();
        assert_eq!(roundtrip(&mut s, "quit"), "ok");
        let mut reader = BufReader::new(s);
        let mut line = String::new();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0, "server must close");
        handle.shutdown();
    }
}
