//! Seeded, deterministic fault injection for the serving subsystem.
//!
//! The paper's robustness claim (§3: "hypervectors store information across
//! all their components so that no component is more responsible for
//! storing any piece of information than another") is evaluated offline by
//! `hdc::noise` and the `robustness` bench. This module carries the same
//! fault model **online**: a [`FaultInjector`] shared between the server,
//! worker pool, and test harnesses can
//!
//! * flip bits (sign-flip components) in *served* model hypervectors —
//!   via [`crate::registry::ModelRegistry::inject_model_faults`], which
//!   reuses `hdc::noise` on a cloned model state;
//! * corrupt or truncate bundle bytes before a load ([`corrupt_bytes`]);
//! * delay, kill, or panic worker threads mid-batch;
//! * garble inbound socket lines so the protocol layer sees trash.
//!
//! Everything is driven by one seeded [`HdRng`], so a chaos run is
//! reproducible from its seed. All knobs default to *off*; a default
//! injector is inert and costs one relaxed atomic load per check.

use crate::lock_unpoisoned;
use hdc::rng::HdRng;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Byte-level bundle corruption modes used by load-integrity tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByteFault {
    /// XOR one randomly chosen payload byte with a random nonzero mask.
    FlipByte,
    /// Drop a random-length tail of the buffer.
    Truncate,
}

/// Corrupts `bytes` in place per `fault`, deterministically from `rng`.
/// Returns the affected offset (flip) or the new length (truncate).
///
/// The first six bytes (magic + version) are left intact so the corruption
/// exercises the *checksum* path rather than the format-detection path.
pub fn corrupt_bytes(bytes: &mut Vec<u8>, fault: ByteFault, rng: &mut HdRng) -> usize {
    match fault {
        ByteFault::FlipByte => {
            if bytes.len() <= 6 {
                return 0;
            }
            let idx = 6 + rng.next_below(bytes.len() - 6);
            let mask = (rng.next_below(255) + 1) as u8;
            bytes[idx] ^= mask;
            idx
        }
        ByteFault::Truncate => {
            if bytes.len() <= 6 {
                return bytes.len();
            }
            let keep = 6 + rng.next_below(bytes.len() - 6);
            bytes.truncate(keep);
            keep
        }
    }
}

/// Shared, seeded fault state consulted by workers and the protocol layer.
///
/// All methods take `&self`; the injector is designed to sit behind an
/// `Arc` shared by every thread in the server.
#[derive(Debug)]
pub struct FaultInjector {
    rng: Mutex<HdRng>,
    /// Per-batch worker sleep, in microseconds. 0 = off.
    worker_delay_us: AtomicU64,
    /// Number of pending worker kills (each worker that picks one up
    /// exits, dropping its current batch).
    pending_kills: AtomicUsize,
    /// Number of pending deliberate worker panics (each panics mid-batch
    /// inside the pool's containment boundary).
    pending_panics: AtomicUsize,
    /// Probability (in parts-per-million) that an inbound protocol line is
    /// garbled before parsing. 0 = off.
    garble_ppm: AtomicU64,
}

impl FaultInjector {
    /// Creates an inert injector whose randomness is derived from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Mutex::new(HdRng::seed_from(seed ^ 0xFA_07_5E_ED)),
            worker_delay_us: AtomicU64::new(0),
            pending_kills: AtomicUsize::new(0),
            pending_panics: AtomicUsize::new(0),
            garble_ppm: AtomicU64::new(0),
        }
    }

    /// Resets every knob to off. Pending kills/panics are discarded.
    pub fn clear(&self) {
        self.worker_delay_us.store(0, Ordering::Relaxed);
        self.pending_kills.store(0, Ordering::Relaxed);
        self.pending_panics.store(0, Ordering::Relaxed);
        self.garble_ppm.store(0, Ordering::Relaxed);
    }

    /// Makes every worker sleep for `d` before executing each batch
    /// (emulating a stalled model call). `Duration::ZERO` turns it off.
    pub fn set_worker_delay(&self, d: Duration) {
        self.worker_delay_us.store(
            d.as_micros().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
    }

    /// The currently configured per-batch delay, if any.
    pub fn worker_delay(&self) -> Option<Duration> {
        match self.worker_delay_us.load(Ordering::Relaxed) {
            0 => None,
            us => Some(Duration::from_micros(us)),
        }
    }

    /// Schedules `n` worker kills. Each is consumed by one worker thread,
    /// which exits as if it crashed (its in-flight batch is dropped, so
    /// waiting clients observe a disconnected reply channel). The pool
    /// refuses to kill its last live worker.
    pub fn kill_workers(&self, n: usize) {
        self.pending_kills.fetch_add(n, Ordering::Relaxed);
    }

    /// Consumes one pending kill, if any.
    pub fn take_kill(&self) -> bool {
        take_one(&self.pending_kills)
    }

    /// Schedules `n` deliberate worker panics (testing the pool's panic
    /// containment boundary).
    pub fn panic_batches(&self, n: usize) {
        self.pending_panics.fetch_add(n, Ordering::Relaxed);
    }

    /// Consumes one pending panic, if any.
    pub fn take_panic(&self) -> bool {
        take_one(&self.pending_panics)
    }

    /// Sets the probability that an inbound protocol line is garbled.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not within `[0, 1]`.
    pub fn set_garble_rate(&self, rate: f64) {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1]");
        self.garble_ppm
            .store((rate * 1_000_000.0) as u64, Ordering::Relaxed);
    }

    /// Garbles `line` in place with the configured probability, returning
    /// whether it was touched. Garbling replaces one character with `'~'`
    /// (never a newline), so a garbled request still reaches the parser as
    /// one line — the fault surfaces as a typed protocol error, not a
    /// framing break.
    pub fn garble_line(&self, line: &mut String) -> bool {
        let ppm = self.garble_ppm.load(Ordering::Relaxed);
        if ppm == 0 || line.is_empty() {
            return false;
        }
        let mut rng = lock_unpoisoned(&self.rng);
        if !rng.next_bool(ppm as f64 / 1_000_000.0) {
            return false;
        }
        let chars: Vec<char> = line.chars().collect();
        let idx = rng.next_below(chars.len());
        let garbled: String = chars
            .iter()
            .enumerate()
            .map(|(i, &c)| if i == idx && c != '\n' { '~' } else { c })
            .collect();
        *line = garbled;
        true
    }

    /// Whether any fault is currently armed (for `stats` reporting).
    pub fn any_armed(&self) -> bool {
        self.worker_delay_us.load(Ordering::Relaxed) != 0
            || self.pending_kills.load(Ordering::Relaxed) != 0
            || self.pending_panics.load(Ordering::Relaxed) != 0
            || self.garble_ppm.load(Ordering::Relaxed) != 0
    }
}

impl Default for FaultInjector {
    fn default() -> Self {
        Self::new(0)
    }
}

/// Decrements `counter` if positive; returns whether it did. Lock-free
/// compare-exchange loop so concurrent workers never double-consume.
fn take_one(counter: &AtomicUsize) -> bool {
    let mut cur = counter.load(Ordering::Relaxed);
    while cur > 0 {
        match counter.compare_exchange_weak(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_by_default() {
        let inj = FaultInjector::new(1);
        assert!(inj.worker_delay().is_none());
        assert!(!inj.take_kill());
        assert!(!inj.take_panic());
        let mut line = "predict m 1,2".to_string();
        assert!(!inj.garble_line(&mut line));
        assert_eq!(line, "predict m 1,2");
        assert!(!inj.any_armed());
    }

    #[test]
    fn kills_and_panics_are_consumed_exactly() {
        let inj = FaultInjector::new(2);
        inj.kill_workers(2);
        inj.panic_batches(1);
        assert!(inj.any_armed());
        assert!(inj.take_kill());
        assert!(inj.take_kill());
        assert!(!inj.take_kill());
        assert!(inj.take_panic());
        assert!(!inj.take_panic());
        assert!(!inj.any_armed());
    }

    #[test]
    fn delay_round_trips() {
        let inj = FaultInjector::new(3);
        inj.set_worker_delay(Duration::from_millis(7));
        assert_eq!(inj.worker_delay(), Some(Duration::from_millis(7)));
        inj.set_worker_delay(Duration::ZERO);
        assert!(inj.worker_delay().is_none());
    }

    #[test]
    fn garble_is_deterministic_per_seed() {
        let run = |seed| {
            let inj = FaultInjector::new(seed);
            inj.set_garble_rate(0.5);
            let mut hits = Vec::new();
            for i in 0..40 {
                let mut line = format!("predict toy {i},{i}");
                if inj.garble_line(&mut line) {
                    hits.push((i, line));
                }
            }
            hits
        };
        let a = run(9);
        let b = run(9);
        let c = run(10);
        assert_eq!(a, b, "same seed must garble identically");
        assert_ne!(a, c, "different seeds should diverge");
        assert!(!a.is_empty(), "rate 0.5 over 40 lines must hit");
        for (_, line) in &a {
            assert!(line.contains('~'), "{line}");
            assert!(!line.contains('\n'));
        }
    }

    #[test]
    fn garble_rate_one_touches_everything() {
        let inj = FaultInjector::new(11);
        inj.set_garble_rate(1.0);
        let mut line = "health".to_string();
        assert!(inj.garble_line(&mut line));
        assert_ne!(line, "health");
        assert_eq!(line.chars().count(), 6);
    }

    #[test]
    fn corrupt_flip_changes_one_byte_past_header() {
        let mut rng = HdRng::seed_from(4);
        let original: Vec<u8> = (0..200u8).collect();
        let mut bytes = original.clone();
        let idx = corrupt_bytes(&mut bytes, ByteFault::FlipByte, &mut rng);
        assert!(idx >= 6);
        assert_eq!(bytes.len(), original.len());
        let diffs: Vec<usize> = (0..bytes.len())
            .filter(|&i| bytes[i] != original[i])
            .collect();
        assert_eq!(diffs, vec![idx]);
    }

    #[test]
    fn corrupt_truncate_keeps_header() {
        let mut rng = HdRng::seed_from(5);
        let mut bytes: Vec<u8> = (0..100u8).collect();
        let keep = corrupt_bytes(&mut bytes, ByteFault::Truncate, &mut rng);
        assert_eq!(bytes.len(), keep);
        assert!(keep >= 6);
        assert!(keep < 100);
    }

    #[test]
    fn injector_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FaultInjector>();
    }
}
