//! Adaptive load shedding: demote traffic to the degraded tier under
//! sustained queue pressure, promote back on recovery.
//!
//! The controller watches the **queue wait** of dispatched rows (enqueue →
//! drain, the time a request spent waiting for a worker, not the model
//! call itself). When the p95 of a sliding window of waits crosses
//! `demote_p95`, the server stops queueing new requests and answers them
//! inline through the §3.2 quantised binary-query path — the paper's
//! robustness tier repurposed as an overload response: cheap enough to
//! absorb traffic the full-precision pipeline cannot.
//!
//! While demoted, every `PROBE_EVERY`-th request is still sent through the
//! full pipeline. Those probes keep feeding wait samples, so the
//! controller can observe recovery and promote once the probe p95 falls
//! below `promote_p95` (a lower threshold — hysteresis, so the tier does
//! not flap around the boundary).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One in `PROBE_EVERY` requests takes the full path while demoted.
const PROBE_EVERY: u64 = 16;

/// Thresholds for the adaptive shed controller.
#[derive(Debug, Clone)]
pub struct ShedConfig {
    /// Demote to the degraded tier when windowed p95 queue wait exceeds
    /// this.
    pub demote_p95: Duration,
    /// Promote back when the probe p95 falls below this. Clamped to at
    /// most `demote_p95` so the hysteresis band can never invert.
    pub promote_p95: Duration,
    /// Sliding-window length in samples.
    pub window: usize,
}

impl Default for ShedConfig {
    fn default() -> Self {
        Self {
            demote_p95: Duration::from_millis(50),
            promote_p95: Duration::from_millis(25),
            window: 256,
        }
    }
}

/// Adaptive queue-wait controller deciding full-precision vs. degraded
/// tier (see the module docs).
#[derive(Debug)]
pub struct ShedController {
    cfg: ShedConfig,
    /// Recent queue waits in µs; bounded ring.
    waits: Mutex<VecDeque<u64>>,
    degraded: AtomicBool,
    probe_counter: AtomicU64,
    demotions: AtomicU64,
    promotions: AtomicU64,
}

impl ShedController {
    /// Builds a controller; `window` is clamped to at least 8 samples so a
    /// single outlier can never flip the tier.
    pub fn new(cfg: ShedConfig) -> Self {
        let cfg = ShedConfig {
            window: cfg.window.max(8),
            promote_p95: cfg.promote_p95.min(cfg.demote_p95),
            ..cfg
        };
        Self {
            cfg,
            waits: Mutex::new(VecDeque::new()),
            degraded: AtomicBool::new(false),
            probe_counter: AtomicU64::new(0),
            demotions: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
        }
    }

    /// Records one queue wait (enqueue → drain) and re-evaluates the tier.
    /// Called by the batcher's dispatcher for every drained row, including
    /// probes while demoted.
    pub fn observe_wait(&self, wait: Duration) {
        let us = wait.as_micros().min(u128::from(u64::MAX)) as u64;
        let mut w = crate::lock_unpoisoned(&self.waits);
        if w.len() == self.cfg.window {
            w.pop_front();
        }
        w.push_back(us);
        // Re-evaluate only on a reasonably full window: demotion is a
        // claim about sustained pressure, not one slow drain.
        if w.len() < self.cfg.window / 2 {
            return;
        }
        let p95 = percentile(&w, 0.95);
        drop(w);
        if self.degraded.load(Ordering::Relaxed) {
            if p95 <= self.cfg.promote_p95.as_micros() as u64 {
                if !self.degraded.swap(false, Ordering::Relaxed) {
                    return; // raced with another promoter
                }
                self.promotions.fetch_add(1, Ordering::Relaxed);
                // Waits measured under overload describe the regime we
                // just left; start the next evaluation fresh.
                crate::lock_unpoisoned(&self.waits).clear();
            }
        } else if p95 > self.cfg.demote_p95.as_micros() as u64 {
            if self.degraded.swap(true, Ordering::Relaxed) {
                return;
            }
            self.demotions.fetch_add(1, Ordering::Relaxed);
            crate::lock_unpoisoned(&self.waits).clear();
        }
    }

    /// Per-request routing decision. `false`: take the full-precision
    /// pipeline. `true`: answer inline through the degraded tier. While
    /// demoted, every `PROBE_EVERY`-th call returns `false` so recovery
    /// stays observable.
    pub fn should_degrade(&self) -> bool {
        if !self.degraded.load(Ordering::Relaxed) {
            return false;
        }
        !self
            .probe_counter
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(PROBE_EVERY)
    }

    /// Whether the controller currently routes traffic to the degraded
    /// tier.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Times the controller demoted to the degraded tier.
    pub fn demotions(&self) -> u64 {
        self.demotions.load(Ordering::Relaxed)
    }

    /// Times the controller promoted back to the full tier.
    pub fn promotions(&self) -> u64 {
        self.promotions.load(Ordering::Relaxed)
    }
}

/// p-th percentile of `samples` (unsorted ring contents), in µs.
fn percentile(samples: &VecDeque<u64>, p: f64) -> u64 {
    let mut v: Vec<u64> = samples.iter().copied().collect();
    v.sort_unstable();
    if v.is_empty() {
        return 0;
    }
    let rank = ((p.clamp(0.0, 1.0) * v.len() as f64).ceil() as usize).max(1) - 1;
    v[rank.min(v.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ShedController {
        ShedController::new(ShedConfig {
            demote_p95: Duration::from_millis(10),
            promote_p95: Duration::from_millis(2),
            window: 8,
        })
    }

    #[test]
    fn starts_in_full_tier() {
        let c = small();
        assert!(!c.is_degraded());
        assert!(!c.should_degrade());
        assert_eq!(c.demotions(), 0);
    }

    #[test]
    fn sustained_pressure_demotes_and_recovery_promotes() {
        let c = small();
        for _ in 0..8 {
            c.observe_wait(Duration::from_millis(50));
        }
        assert!(c.is_degraded(), "p95 far above threshold must demote");
        assert_eq!(c.demotions(), 1);

        // Recovery: fast probe waits promote back.
        for _ in 0..8 {
            c.observe_wait(Duration::from_micros(100));
        }
        assert!(!c.is_degraded());
        assert_eq!(c.promotions(), 1);
    }

    #[test]
    fn hysteresis_band_does_not_flap() {
        let c = small();
        for _ in 0..8 {
            c.observe_wait(Duration::from_millis(50));
        }
        assert!(c.is_degraded());
        // Waits between promote (2ms) and demote (10ms) thresholds: stay
        // demoted — the band absorbs the boundary regime.
        for _ in 0..32 {
            c.observe_wait(Duration::from_millis(5));
        }
        assert!(c.is_degraded());
        assert_eq!(c.demotions(), 1);
        assert_eq!(c.promotions(), 0);
    }

    #[test]
    fn below_half_window_never_evaluates() {
        // Demotion is a claim about sustained pressure: even arbitrarily
        // slow waits cannot flip the tier before half a window of
        // evidence has accumulated.
        let c = small();
        c.observe_wait(Duration::from_secs(10));
        c.observe_wait(Duration::from_secs(10));
        c.observe_wait(Duration::from_secs(10));
        assert!(!c.is_degraded());
        assert_eq!(c.demotions(), 0);
    }

    #[test]
    fn probes_pass_through_while_demoted() {
        let c = small();
        for _ in 0..8 {
            c.observe_wait(Duration::from_millis(50));
        }
        assert!(c.is_degraded());
        let full: usize = (0..64).filter(|_| !c.should_degrade()).count();
        assert_eq!(full, 4, "one probe per {PROBE_EVERY} requests");
    }

    #[test]
    fn inverted_thresholds_are_clamped() {
        let c = ShedController::new(ShedConfig {
            demote_p95: Duration::from_millis(1),
            promote_p95: Duration::from_millis(100),
            window: 8,
        });
        for _ in 0..8 {
            c.observe_wait(Duration::from_millis(50));
        }
        assert!(c.is_degraded());
        // With promote clamped to demote, 50ms waits can never promote.
        for _ in 0..8 {
            c.observe_wait(Duration::from_millis(50));
        }
        assert!(c.is_degraded());
    }
}
