//! Fixed-size worker pool over `std::thread` and channels.
//!
//! Workers pull [`Batch`]es from a shared receiver, run the model's batched
//! predict, and answer each row's reply channel. The pool tracks how many
//! workers are currently executing so the batcher can decide between
//! immediate dispatch (a worker is idle) and coalescing (all busy).

use crate::metrics::ModelMetrics;
use crate::registry::ServedModel;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// One pending prediction row plus its reply channel.
#[derive(Debug)]
pub struct WorkItem {
    /// Raw (unscaled) feature row.
    pub row: Vec<f32>,
    /// When the row entered the queue — start of the latency measurement.
    pub enqueued_at: Instant,
    /// Where the answer goes. A dropped receiver (client hung up) is fine;
    /// the send error is ignored.
    pub reply: SyncSender<Result<f32, String>>,
}

/// A group of rows bound for the same model version.
#[derive(Debug)]
pub struct Batch {
    /// The model version every row in this batch is evaluated against.
    pub model: Arc<ServedModel>,
    /// Metrics cell the results are recorded into.
    pub metrics: Arc<ModelMetrics>,
    /// The rows.
    pub items: Vec<WorkItem>,
}

/// Fixed pool of prediction threads.
#[derive(Debug)]
pub struct WorkerPool {
    tx: Option<SyncSender<Batch>>,
    handles: Vec<JoinHandle<()>>,
    busy: Arc<AtomicUsize>,
    workers: usize,
}

/// Executes one batch: batched predict, then one reply per row.
fn run_batch(batch: Batch) {
    let rows: Vec<Vec<f32>> = batch.items.iter().map(|i| i.row.clone()).collect();
    batch.metrics.record_batch(rows.len());
    match batch.model.bundle.predict(&rows) {
        Ok(preds) => {
            for (item, pred) in batch.items.into_iter().zip(preds) {
                batch.metrics.record_ok(item.enqueued_at.elapsed());
                let _ = item.reply.send(Ok(pred));
            }
        }
        Err(msg) => {
            for item in batch.items {
                batch.metrics.record_error();
                let _ = item.reply.send(Err(msg.clone()));
            }
        }
    }
}

impl WorkerPool {
    /// Spawns `workers` threads (clamped to at least 1) with a dispatch
    /// channel holding at most `queue_depth` batches.
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = sync_channel::<Batch>(queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let busy = Arc::new(AtomicUsize::new(0));
        let handles = (0..workers)
            .map(|i| {
                let rx: Arc<Mutex<Receiver<Batch>>> = rx.clone();
                let busy = busy.clone();
                std::thread::Builder::new()
                    .name(format!("reghd-worker-{i}"))
                    .spawn(move || loop {
                        // Holding the mutex only while waiting for one batch
                        // keeps the other workers free to grab the next.
                        let batch = match rx.lock().unwrap().recv() {
                            Ok(b) => b,
                            Err(_) => return, // pool dropped its sender
                        };
                        busy.fetch_add(1, Ordering::SeqCst);
                        run_batch(batch);
                        busy.fetch_sub(1, Ordering::SeqCst);
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        Self {
            tx: Some(tx),
            handles,
            busy,
            workers,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether at least one worker is idle right now. Advisory — the
    /// answer can be stale by the time the caller acts on it, which only
    /// costs a slightly suboptimal coalescing decision, never correctness.
    pub fn has_idle_worker(&self) -> bool {
        self.busy.load(Ordering::SeqCst) < self.workers
    }

    /// Submits a batch, blocking if the dispatch channel is full.
    ///
    /// # Errors
    ///
    /// Returns the batch back if the pool has shut down.
    pub fn submit(&self, batch: Batch) -> Result<(), Batch> {
        match &self.tx {
            Some(tx) => tx.send(batch).map_err(|e| e.0),
            None => Err(batch),
        }
    }

    /// Stops accepting work and joins all workers after they drain the
    /// channel. Called automatically on drop.
    pub fn shutdown(&mut self) {
        self.tx.take(); // closing the channel ends every worker loop
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle;
    use crate::registry::ModelRegistry;
    use datasets::Dataset;

    fn toy_model() -> (ModelRegistry, Arc<ServedModel>) {
        let features: Vec<Vec<f32>> = (0..40).map(|i| vec![i as f32, (i * 3) as f32]).collect();
        let targets: Vec<f32> = features.iter().map(|r| r[0] * 2.0).collect();
        let ds = Dataset::new("toy", features, targets);
        let (b, _) = bundle::train(&ds, 128, 2, 3, 9, false).unwrap();
        let reg = ModelRegistry::new();
        reg.load_bytes("m", &b.to_bytes().unwrap()).unwrap();
        let served = reg.get("m").unwrap();
        (reg, served)
    }

    #[test]
    fn pool_answers_batches_and_matches_direct_predict() {
        let (_reg, served) = toy_model();
        let metrics = Arc::new(ModelMetrics::default());
        let pool = WorkerPool::new(2, 8);
        let rows: Vec<Vec<f32>> = (0..6).map(|i| vec![i as f32, i as f32 + 1.0]).collect();
        let direct = served.bundle.predict(&rows).unwrap();

        let mut receivers = Vec::new();
        let mut items = Vec::new();
        for row in &rows {
            let (tx, rx) = sync_channel(1);
            receivers.push(rx);
            items.push(WorkItem {
                row: row.clone(),
                enqueued_at: Instant::now(),
                reply: tx,
            });
        }
        pool.submit(Batch {
            model: served,
            metrics: metrics.clone(),
            items,
        })
        .unwrap();
        for (rx, want) in receivers.iter().zip(&direct) {
            let got = rx.recv().unwrap().unwrap();
            assert_eq!(got, *want, "pooled result must be bit-exact");
        }
        assert_eq!(metrics.ok.load(Ordering::Relaxed), 6);
        assert_eq!(metrics.batches.load(Ordering::Relaxed), 1);
        assert!(metrics.latency.count() >= 6);
    }

    #[test]
    fn bad_row_width_reports_error_per_item() {
        let (_reg, served) = toy_model();
        let metrics = Arc::new(ModelMetrics::default());
        let pool = WorkerPool::new(1, 4);
        let (tx, rx) = sync_channel(1);
        pool.submit(Batch {
            model: served,
            metrics: metrics.clone(),
            items: vec![WorkItem {
                row: vec![1.0, 2.0, 3.0], // model expects 2 features
                enqueued_at: Instant::now(),
                reply: tx,
            }],
        })
        .unwrap();
        let err = rx.recv().unwrap().unwrap_err();
        assert!(err.contains("features"), "{err}");
        assert_eq!(metrics.errors.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn shutdown_joins_and_rejects_new_work() {
        let (_reg, served) = toy_model();
        let mut pool = WorkerPool::new(2, 4);
        pool.shutdown();
        let res = pool.submit(Batch {
            model: served,
            metrics: Arc::new(ModelMetrics::default()),
            items: Vec::new(),
        });
        assert!(res.is_err());
    }

    #[test]
    fn dropped_reply_receiver_does_not_poison_pool() {
        let (_reg, served) = toy_model();
        let metrics = Arc::new(ModelMetrics::default());
        let pool = WorkerPool::new(1, 4);
        let (tx, rx) = sync_channel::<Result<f32, String>>(1);
        drop(rx); // client hung up before the answer
        pool.submit(Batch {
            model: served.clone(),
            metrics: metrics.clone(),
            items: vec![WorkItem {
                row: vec![1.0, 2.0],
                enqueued_at: Instant::now(),
                reply: tx,
            }],
        })
        .unwrap();
        // The pool must still serve a later, healthy request.
        let (tx2, rx2) = sync_channel(1);
        pool.submit(Batch {
            model: served,
            metrics,
            items: vec![WorkItem {
                row: vec![3.0, 4.0],
                enqueued_at: Instant::now(),
                reply: tx2,
            }],
        })
        .unwrap();
        assert!(rx2.recv().unwrap().is_ok());
    }
}
