//! Fixed-size worker pool over `std::thread` and channels.
//!
//! Workers pull [`Batch`]es from a shared receiver, run the model's batched
//! predict, and answer each row's reply channel. The pool tracks how many
//! workers are currently executing so the batcher can decide between
//! immediate dispatch (a worker is idle) and coalescing (all busy).
//!
//! # Fault containment
//!
//! Each batch runs inside `std::panic::catch_unwind`: a panic (whether
//! organic or injected through a [`FaultInjector`]) is contained to that
//! batch — its reply senders drop, so waiting clients observe a
//! disconnected channel and fall back to the degraded path, while the
//! worker thread survives to take the next batch. An injected *kill* makes
//! a worker exit as if it crashed, except that the pool refuses to kill its
//! last live worker.

use crate::faults::FaultInjector;
use crate::metrics::ModelMetrics;
use crate::registry::ServedModel;
use crate::{lock_unpoisoned, ServeError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Why a row was answered without a prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkError {
    /// The row's deadline passed before any model arithmetic ran; it was
    /// shed pre-compute. The front-end answers through the degraded path.
    Expired,
    /// The batcher was draining at shutdown; the row was never dispatched.
    Draining,
    /// The row's [`ReplySink`] was dropped without ever being answered —
    /// the worker executing it panicked or exited. Front-ends treat this
    /// exactly like a disconnected reply channel: fall back to the
    /// degraded path.
    Dropped,
    /// The model call itself failed (bad row width, etc.).
    Failed(String),
}

impl std::fmt::Display for WorkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Expired => write!(f, "deadline expired"),
            Self::Draining => write!(f, "server draining"),
            Self::Dropped => write!(f, "reply sink dropped without an answer"),
            Self::Failed(msg) => write!(f, "{msg}"),
        }
    }
}

/// Where a row's answer goes.
///
/// The legacy line front-end blocks a connection thread on a rendezvous
/// channel per request; the event-loop front-end cannot block, so it hands
/// over a callback that routes the completion back to the poller that owns
/// the connection. Both variants deliver **exactly one** terminal signal:
/// the channel disconnects if its sender drops unanswered, and the callback
/// variant is wrapped in a drop guard that fires [`WorkError::Dropped`] if
/// a panicking worker unwinds past it.
pub enum ReplySink {
    /// Rendezvous channel; the sender is waited on with `recv_timeout`.
    Channel(SyncSender<Result<f32, WorkError>>),
    /// Callback invoked exactly once, from whichever thread settles the
    /// row (worker, batcher drain, or the drop guard during an unwind).
    Callback(CompletionGuard),
}

impl ReplySink {
    /// Wraps a callback so the row is *guaranteed* an answer: if the sink
    /// is dropped before [`ReplySink::send`] runs (worker panic, dropped
    /// batch), the callback fires with [`WorkError::Dropped`].
    pub fn from_fn<F>(f: F) -> Self
    where
        F: FnOnce(Result<f32, WorkError>) + Send + 'static,
    {
        Self::Callback(CompletionGuard(Some(Box::new(f))))
    }

    /// Delivers the row's one answer. Consumes the sink so a double send
    /// is unrepresentable. A disconnected channel receiver (client hung
    /// up) is fine; the error is ignored.
    pub fn send(self, result: Result<f32, WorkError>) {
        match self {
            Self::Channel(tx) => {
                let _ = tx.send(result);
            }
            Self::Callback(mut guard) => {
                if let Some(f) = guard.0.take() {
                    f(result);
                }
            }
        }
    }
}

impl From<SyncSender<Result<f32, WorkError>>> for ReplySink {
    fn from(tx: SyncSender<Result<f32, WorkError>>) -> Self {
        Self::Channel(tx)
    }
}

impl std::fmt::Debug for ReplySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Channel(_) => f.write_str("ReplySink::Channel"),
            Self::Callback(_) => f.write_str("ReplySink::Callback"),
        }
    }
}

/// Boxed completion callback: consumes the row's one terminal result.
type CompletionFn = Box<dyn FnOnce(Result<f32, WorkError>) + Send>;

/// Drop guard around a completion callback (see [`ReplySink::from_fn`]).
pub struct CompletionGuard(Option<CompletionFn>);

impl Drop for CompletionGuard {
    fn drop(&mut self) {
        if let Some(f) = self.0.take() {
            // This drop can run mid-unwind (worker panic); the callback
            // must still not be allowed to escalate a panic into an abort.
            let _ = catch_unwind(AssertUnwindSafe(|| f(Err(WorkError::Dropped))));
        }
    }
}

/// One pending prediction row plus its reply channel.
#[derive(Debug)]
pub struct WorkItem {
    /// Raw (unscaled) feature row.
    pub row: Vec<f32>,
    /// When the row entered the queue — start of the latency measurement.
    pub enqueued_at: Instant,
    /// Answer-by time. A row whose deadline has passed is shed before any
    /// model arithmetic runs — at drain time in the batcher and again just
    /// before compute in the worker (`None`: never expires).
    pub deadline: Option<Instant>,
    /// Where the answer goes (blocking channel or poller callback).
    pub reply: ReplySink,
}

impl WorkItem {
    /// Whether the row's deadline has already passed.
    pub fn is_expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| d <= now)
    }
}

/// A group of rows bound for the same model version.
#[derive(Debug)]
pub struct Batch {
    /// The model version every row in this batch is evaluated against.
    pub model: Arc<ServedModel>,
    /// Metrics cell the results are recorded into.
    pub metrics: Arc<ModelMetrics>,
    /// The rows.
    pub items: Vec<WorkItem>,
}

/// Fixed pool of prediction threads.
#[derive(Debug)]
pub struct WorkerPool {
    tx: Option<SyncSender<Batch>>,
    handles: Vec<JoinHandle<()>>,
    busy: Arc<AtomicUsize>,
    alive: Arc<AtomicUsize>,
    workers: usize,
}

/// Executes one batch: batched predict, then one reply per row.
///
/// `scratch` is the worker's long-lived prediction scratch: its buffers are
/// reused across every batch the worker serves, so the steady-state hot path
/// performs no per-request hypervector allocations.
fn run_batch(batch: Batch, scratch: &mut reghd::PredictScratch) {
    // Last-chance deadline check: a row can expire while its batch sat in
    // the dispatch channel. Shedding here keeps expired rows from paying
    // for encode/predict arithmetic nobody is waiting for.
    let now = Instant::now();
    let (live, expired): (Vec<WorkItem>, Vec<WorkItem>) =
        batch.items.into_iter().partition(|i| !i.is_expired(now));
    for item in expired {
        batch.metrics.record_expired();
        item.reply.send(Err(WorkError::Expired));
    }
    if live.is_empty() {
        return;
    }
    let rows: Vec<Vec<f32>> = live.iter().map(|i| i.row.clone()).collect();
    batch.metrics.record_batch(rows.len());
    match batch.model.bundle.predict_with(&rows, scratch) {
        Ok(preds) => {
            for (item, pred) in live.into_iter().zip(preds) {
                batch.metrics.record_ok(item.enqueued_at.elapsed());
                item.reply.send(Ok(pred));
            }
        }
        Err(msg) => {
            for item in live {
                batch.metrics.record_error();
                item.reply.send(Err(WorkError::Failed(msg.clone())));
            }
        }
    }
}

/// The per-thread worker loop. Returns when the dispatch channel closes or
/// an injected kill is consumed.
fn worker_loop(
    rx: Arc<Mutex<Receiver<Batch>>>,
    busy: Arc<AtomicUsize>,
    alive: Arc<AtomicUsize>,
    injector: Option<Arc<FaultInjector>>,
) {
    // One scratch per worker thread, reused for the thread's lifetime. Every
    // buffer in it is fully overwritten before use, so it needs no reset
    // even after a contained panic.
    let mut scratch = reghd::PredictScratch::default();
    loop {
        // Holding the mutex only while waiting for one batch keeps the
        // other workers free to grab the next.
        let batch = match lock_unpoisoned(&rx).recv() {
            Ok(b) => b,
            Err(_) => {
                // Pool dropped its sender: orderly shutdown.
                alive.fetch_sub(1, Ordering::SeqCst);
                return;
            }
        };
        busy.fetch_add(1, Ordering::SeqCst);
        let mut injected_panic = false;
        if let Some(inj) = &injector {
            if let Some(d) = inj.worker_delay() {
                std::thread::sleep(d);
            }
            if inj.take_kill() {
                // Exit as if crashed — unless this is the last live
                // worker, in which case the kill is dropped (a pool that
                // can never make progress again is an outage, not a
                // recoverable fault).
                if alive.fetch_sub(1, Ordering::SeqCst) > 1 {
                    busy.fetch_sub(1, Ordering::SeqCst);
                    // `batch` drops here: its reply senders disconnect and
                    // waiting clients take the degraded path.
                    return;
                }
                alive.fetch_add(1, Ordering::SeqCst);
            }
            injected_panic = inj.take_panic();
        }
        let metrics = batch.metrics.clone();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if injected_panic {
                panic!("injected worker panic");
            }
            run_batch(batch, &mut scratch);
        }));
        if outcome.is_err() {
            // The batch was consumed by the unwind; its reply senders are
            // gone, which is exactly the disconnect signal clients expect.
            metrics.record_panic();
        }
        busy.fetch_sub(1, Ordering::SeqCst);
    }
}

impl WorkerPool {
    /// Spawns `workers` threads (clamped to at least 1) with a dispatch
    /// channel holding at most `queue_depth` batches.
    ///
    /// # Errors
    ///
    /// [`ServeError::Spawn`] if the OS refuses a thread; any threads
    /// already spawned are shut down before returning.
    pub fn new(workers: usize, queue_depth: usize) -> Result<Self, ServeError> {
        Self::build(workers, queue_depth, None)
    }

    /// Like [`WorkerPool::new`], but every worker consults `injector`
    /// before each batch (delay / kill / panic faults).
    ///
    /// # Errors
    ///
    /// See [`WorkerPool::new`].
    pub fn with_injector(
        workers: usize,
        queue_depth: usize,
        injector: Arc<FaultInjector>,
    ) -> Result<Self, ServeError> {
        Self::build(workers, queue_depth, Some(injector))
    }

    fn build(
        workers: usize,
        queue_depth: usize,
        injector: Option<Arc<FaultInjector>>,
    ) -> Result<Self, ServeError> {
        let workers = workers.max(1);
        let (tx, rx) = sync_channel::<Batch>(queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let busy = Arc::new(AtomicUsize::new(0));
        let alive = Arc::new(AtomicUsize::new(workers));
        let mut pool = Self {
            tx: Some(tx),
            handles: Vec::with_capacity(workers),
            busy: busy.clone(),
            alive: alive.clone(),
            workers,
        };
        for i in 0..workers {
            let rx = rx.clone();
            let busy = busy.clone();
            let worker_alive = alive.clone();
            let injector = injector.clone();
            let handle = std::thread::Builder::new()
                .name(format!("reghd-worker-{i}"))
                .spawn(move || worker_loop(rx, busy, worker_alive, injector));
            match handle {
                Ok(h) => pool.handles.push(h),
                Err(e) => {
                    // Threads we did spawn believe `workers` are alive;
                    // correct the count, then let shutdown join them.
                    alive.fetch_sub(workers - i, Ordering::SeqCst);
                    pool.shutdown();
                    return Err(ServeError::Spawn(e));
                }
            }
        }
        Ok(pool)
    }

    /// Number of worker threads the pool was built with.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of workers currently alive (spawned minus injected kills).
    pub fn alive_workers(&self) -> usize {
        self.alive.load(Ordering::SeqCst)
    }

    /// Whether at least one live worker is idle right now. Advisory — the
    /// answer can be stale by the time the caller acts on it, which only
    /// costs a slightly suboptimal coalescing decision, never correctness.
    pub fn has_idle_worker(&self) -> bool {
        self.busy.load(Ordering::SeqCst) < self.alive.load(Ordering::SeqCst)
    }

    /// Submits a batch, blocking if the dispatch channel is full.
    ///
    /// # Errors
    ///
    /// Returns the batch back if the pool has shut down.
    pub fn submit(&self, batch: Batch) -> Result<(), Batch> {
        match &self.tx {
            Some(tx) => tx.send(batch).map_err(|e| e.0),
            None => Err(batch),
        }
    }

    /// Stops accepting work and joins all workers after they drain the
    /// channel. Called automatically on drop.
    pub fn shutdown(&mut self) {
        self.tx.take(); // closing the channel ends every worker loop
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle;
    use crate::registry::ModelRegistry;
    use datasets::Dataset;
    use std::time::Duration;

    fn toy_model() -> (ModelRegistry, Arc<ServedModel>) {
        let features: Vec<Vec<f32>> = (0..40).map(|i| vec![i as f32, (i * 3) as f32]).collect();
        let targets: Vec<f32> = features.iter().map(|r| r[0] * 2.0).collect();
        let ds = Dataset::new("toy", features, targets);
        let (b, _) = bundle::train(&ds, 128, 2, 3, 9, false).unwrap();
        let reg = ModelRegistry::new();
        reg.load_bytes("m", &b.to_bytes().unwrap()).unwrap();
        let served = reg.get("m").unwrap();
        (reg, served)
    }

    fn item(row: Vec<f32>) -> (WorkItem, Receiver<Result<f32, WorkError>>) {
        let (tx, rx) = sync_channel(1);
        (
            WorkItem {
                row,
                enqueued_at: Instant::now(),
                deadline: None,
                reply: tx.into(),
            },
            rx,
        )
    }

    #[test]
    fn pool_answers_batches_and_matches_direct_predict() {
        let (_reg, served) = toy_model();
        let metrics = Arc::new(ModelMetrics::default());
        let pool = WorkerPool::new(2, 8).unwrap();
        let rows: Vec<Vec<f32>> = (0..6).map(|i| vec![i as f32, i as f32 + 1.0]).collect();
        let direct = served.bundle.predict(&rows).unwrap();

        let mut receivers = Vec::new();
        let mut items = Vec::new();
        for row in &rows {
            let (it, rx) = item(row.clone());
            receivers.push(rx);
            items.push(it);
        }
        pool.submit(Batch {
            model: served,
            metrics: metrics.clone(),
            items,
        })
        .unwrap();
        for (rx, want) in receivers.iter().zip(&direct) {
            let got = rx.recv().unwrap().unwrap();
            assert_eq!(got, *want, "pooled result must be bit-exact");
        }
        assert_eq!(metrics.ok.load(Ordering::Relaxed), 6);
        assert_eq!(metrics.batches.load(Ordering::Relaxed), 1);
        assert!(metrics.latency.count() >= 6);
    }

    #[test]
    fn bad_row_width_reports_error_per_item() {
        let (_reg, served) = toy_model();
        let metrics = Arc::new(ModelMetrics::default());
        let pool = WorkerPool::new(1, 4).unwrap();
        let (it, rx) = item(vec![1.0, 2.0, 3.0]); // model expects 2 features
        pool.submit(Batch {
            model: served,
            metrics: metrics.clone(),
            items: vec![it],
        })
        .unwrap();
        let err = rx.recv().unwrap().unwrap_err();
        assert!(err.to_string().contains("features"), "{err}");
        assert_eq!(metrics.errors.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn shutdown_joins_and_rejects_new_work() {
        let (_reg, served) = toy_model();
        let mut pool = WorkerPool::new(2, 4).unwrap();
        pool.shutdown();
        let res = pool.submit(Batch {
            model: served,
            metrics: Arc::new(ModelMetrics::default()),
            items: Vec::new(),
        });
        assert!(res.is_err());
    }

    #[test]
    fn dropped_reply_receiver_does_not_poison_pool() {
        let (_reg, served) = toy_model();
        let metrics = Arc::new(ModelMetrics::default());
        let pool = WorkerPool::new(1, 4).unwrap();
        let (tx, rx) = sync_channel::<Result<f32, WorkError>>(1);
        drop(rx); // client hung up before the answer
        pool.submit(Batch {
            model: served.clone(),
            metrics: metrics.clone(),
            items: vec![WorkItem {
                row: vec![1.0, 2.0],
                enqueued_at: Instant::now(),
                deadline: None,
                reply: tx.into(),
            }],
        })
        .unwrap();
        // The pool must still serve a later, healthy request.
        let (it, rx2) = item(vec![3.0, 4.0]);
        pool.submit(Batch {
            model: served,
            metrics,
            items: vec![it],
        })
        .unwrap();
        assert!(rx2.recv().unwrap().is_ok());
    }

    #[test]
    fn injected_panic_is_contained() {
        let (_reg, served) = toy_model();
        let metrics = Arc::new(ModelMetrics::default());
        let inj = Arc::new(FaultInjector::new(1));
        let pool = WorkerPool::with_injector(1, 4, inj.clone()).unwrap();

        inj.panic_batches(1);
        let (it, rx) = item(vec![1.0, 2.0]);
        pool.submit(Batch {
            model: served.clone(),
            metrics: metrics.clone(),
            items: vec![it],
        })
        .unwrap();
        // The panicked batch's reply channel disconnects without an answer.
        assert!(rx.recv().is_err());

        // The same (sole) worker survives and answers the next batch.
        let (it, rx) = item(vec![3.0, 4.0]);
        pool.submit(Batch {
            model: served,
            metrics: metrics.clone(),
            items: vec![it],
        })
        .unwrap();
        assert!(rx.recv().unwrap().is_ok());
        assert_eq!(metrics.panics.load(Ordering::Relaxed), 1);
        assert_eq!(pool.alive_workers(), 1);
    }

    #[test]
    fn injected_kill_removes_worker_but_never_the_last() {
        let (_reg, served) = toy_model();
        let metrics = Arc::new(ModelMetrics::default());
        let inj = Arc::new(FaultInjector::new(2));
        let pool = WorkerPool::with_injector(2, 8, inj.clone()).unwrap();
        assert_eq!(pool.alive_workers(), 2);

        // First kill: one worker exits, its batch is dropped.
        inj.kill_workers(1);
        let (it, rx) = item(vec![1.0, 2.0]);
        pool.submit(Batch {
            model: served.clone(),
            metrics: metrics.clone(),
            items: vec![it],
        })
        .unwrap();
        assert!(rx.recv().is_err(), "killed worker's batch must drop");
        // Wait for the exit to be visible.
        for _ in 0..100 {
            if pool.alive_workers() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pool.alive_workers(), 1);

        // Second kill: refused, the last worker keeps serving.
        inj.kill_workers(1);
        let (it, rx) = item(vec![3.0, 4.0]);
        pool.submit(Batch {
            model: served.clone(),
            metrics: metrics.clone(),
            items: vec![it],
        })
        .unwrap();
        assert!(rx.recv().unwrap().is_ok(), "last worker must survive");
        assert_eq!(pool.alive_workers(), 1);

        // And it continues to answer after the refused kill.
        let (it, rx) = item(vec![5.0, 6.0]);
        pool.submit(Batch {
            model: served,
            metrics,
            items: vec![it],
        })
        .unwrap();
        assert!(rx.recv().unwrap().is_ok());
    }

    #[test]
    fn expired_item_inside_assembled_batch_is_shed_pre_compute() {
        // A row can expire after batch assembly but before compute (e.g.
        // while the batch sat behind a slow predecessor in the dispatch
        // channel). It must be answered `Expired` without being predicted,
        // while live companions in the same batch are served normally.
        let (_reg, served) = toy_model();
        let metrics = Arc::new(ModelMetrics::default());
        let pool = WorkerPool::new(1, 4).unwrap();
        let (expired_tx, expired_rx) = sync_channel(1);
        let (live, live_rx) = item(vec![3.0, 4.0]);
        pool.submit(Batch {
            model: served,
            metrics: metrics.clone(),
            items: vec![
                WorkItem {
                    row: vec![1.0, 2.0],
                    enqueued_at: Instant::now(),
                    deadline: Some(Instant::now() - Duration::from_millis(1)),
                    reply: expired_tx.into(),
                },
                live,
            ],
        })
        .unwrap();
        assert_eq!(expired_rx.recv().unwrap(), Err(WorkError::Expired));
        assert!(live_rx.recv().unwrap().is_ok());
        assert_eq!(metrics.expired.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.ok.load(Ordering::Relaxed), 1);
        // Only the live row was counted into (and paid for) the model call.
        assert_eq!(metrics.batched_rows.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn injected_delay_slows_batches() {
        let (_reg, served) = toy_model();
        let metrics = Arc::new(ModelMetrics::default());
        let inj = Arc::new(FaultInjector::new(3));
        let pool = WorkerPool::with_injector(1, 4, inj.clone()).unwrap();
        inj.set_worker_delay(Duration::from_millis(50));
        let start = Instant::now();
        let (it, rx) = item(vec![1.0, 2.0]);
        pool.submit(Batch {
            model: served,
            metrics,
            items: vec![it],
        })
        .unwrap();
        assert!(rx.recv().unwrap().is_ok());
        assert!(start.elapsed() >= Duration::from_millis(50));
    }
}
