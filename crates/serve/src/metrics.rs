//! Serving metrics: lock-free per-model counters and a µs-bucketed latency
//! histogram with approximate p50/p95/p99 readout.
//!
//! Everything is atomic so the hot path (worker threads recording one
//! sample per served row) never takes a lock; the `stats` command and the
//! shutdown dump read a consistent-enough snapshot with relaxed loads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Upper bounds (inclusive, in µs) of the latency histogram buckets. The
/// final `u64::MAX` bucket catches everything slower than one second.
pub const BUCKET_BOUNDS_US: [u64; 20] = [
    1,
    2,
    5,
    10,
    25,
    50,
    100,
    250,
    500,
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    u64::MAX,
];

/// Fixed-bucket latency histogram over microseconds.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; 20],
}

impl LatencyHistogram {
    /// Records one latency sample.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(BUCKET_BOUNDS_US.len() - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Approximate percentile (`p` in `0.0..=1.0`) as the upper bound of
    /// the bucket containing the p-th sample, in µs. Returns `None` when
    /// the histogram is empty.
    ///
    /// The reported value saturates at the last **finite** bound
    /// (1 000 000 µs): the overflow bucket's nominal bound is `u64::MAX`,
    /// which would otherwise leak `p99us=18446744073709551615` into the
    /// `stats` protocol output.
    pub fn percentile_us(&self, p: f64) -> Option<u64> {
        const LAST_FINITE_US: u64 = 1_000_000;
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Some(BUCKET_BOUNDS_US[i].min(LAST_FINITE_US));
            }
        }
        Some(LAST_FINITE_US)
    }
}

/// Counters for one served model.
#[derive(Debug, Default)]
pub struct ModelMetrics {
    /// Rows answered successfully.
    pub ok: AtomicU64,
    /// Rows answered with an error.
    pub errors: AtomicU64,
    /// Rows rejected at enqueue time because the queue was full.
    pub shed: AtomicU64,
    /// Rows rejected at enqueue time because the batcher was stopping —
    /// kept apart from `shed` so a shutdown never reads as overload.
    pub stopped: AtomicU64,
    /// Rows whose deadline passed before any model arithmetic ran — shed
    /// pre-compute at drain or batch-execution time.
    pub expired: AtomicU64,
    /// Rows answered through the degraded (quantised binary) fallback
    /// path instead of the full-precision pipeline.
    pub degraded: AtomicU64,
    /// Worker batches lost to a contained panic.
    pub panics: AtomicU64,
    /// Batches dispatched to the worker pool for this model.
    pub batches: AtomicU64,
    /// Rows carried by those batches (batched_rows / batches = mean batch).
    pub batched_rows: AtomicU64,
    /// End-to-end latency (enqueue → reply) of successful rows.
    pub latency: LatencyHistogram,
}

impl ModelMetrics {
    /// Records a successfully served row with its end-to-end latency.
    pub fn record_ok(&self, latency: Duration) {
        self.ok.fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency);
    }

    /// Records a failed row.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a shed (load-rejected) row.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a row rejected because the batcher was stopping.
    pub fn record_stopped(&self) {
        self.stopped.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a row shed pre-compute because its deadline passed.
    pub fn record_expired(&self) {
        self.expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a row answered through the degraded fallback path.
    pub fn record_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a worker batch lost to a contained panic.
    pub fn record_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a dispatched batch of `rows` rows.
    pub fn record_batch(&self, rows: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_rows.fetch_add(rows as u64, Ordering::Relaxed);
    }

    /// One protocol line summarising this model's counters.
    pub fn render(&self, name: &str) -> String {
        let batches = self.batches.load(Ordering::Relaxed);
        let rows = self.batched_rows.load(Ordering::Relaxed);
        let mean_batch = if batches > 0 {
            rows as f64 / batches as f64
        } else {
            0.0
        };
        format!(
            "stat {name} ok={} err={} shed={} stopped={} expired={} degraded={} panics={} \
             batches={batches} mean_batch={mean_batch:.2} p50us={} p95us={} p99us={}",
            self.ok.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.shed.load(Ordering::Relaxed),
            self.stopped.load(Ordering::Relaxed),
            self.expired.load(Ordering::Relaxed),
            self.degraded.load(Ordering::Relaxed),
            self.panics.load(Ordering::Relaxed),
            self.latency.percentile_us(0.50).unwrap_or(0),
            self.latency.percentile_us(0.95).unwrap_or(0),
            self.latency.percentile_us(0.99).unwrap_or(0),
        )
    }
}

/// Registry of per-model metrics plus server-wide counters.
#[derive(Debug, Default)]
pub struct MetricsHub {
    per_model: RwLock<HashMap<String, Arc<ModelMetrics>>>,
    /// Connections accepted over the server's lifetime.
    pub connections: AtomicU64,
    /// Connections refused at accept time by the connection cap.
    pub connections_rejected: AtomicU64,
    /// Protocol lines that failed to parse.
    pub bad_requests: AtomicU64,
    /// Reloads refused because the staged bundle failed its canary replay.
    pub canary_failures: AtomicU64,
    /// Corrupted models rolled back to their last-good version by a sweep.
    pub rollbacks: AtomicU64,
    /// Integrity sweeps executed (periodic or on-demand).
    pub sweeps: AtomicU64,
}

impl MetricsHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// The metrics cell for `name`, created on first use. Metrics survive
    /// hot-reloads of the underlying model (same name, new bytes) so
    /// latency history spans versions.
    pub fn for_model(&self, name: &str) -> Arc<ModelMetrics> {
        if let Some(m) = crate::read_unpoisoned(&self.per_model).get(name) {
            return m.clone();
        }
        let mut map = crate::write_unpoisoned(&self.per_model);
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(ModelMetrics::default()))
            .clone()
    }

    /// `stat` lines for every model, sorted by name for stable output.
    pub fn render_all(&self) -> Vec<String> {
        let map = crate::read_unpoisoned(&self.per_model);
        let mut names: Vec<&String> = map.keys().collect();
        names.sort();
        names.into_iter().map(|n| map[n].render(n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile_us(0.5), None);
    }

    #[test]
    fn percentiles_land_in_right_buckets() {
        let h = LatencyHistogram::default();
        // 90 fast samples (≤10µs bucket), 10 slow ones (≤2500µs bucket).
        for _ in 0..90 {
            h.record(Duration::from_micros(7));
        }
        for _ in 0..10 {
            h.record(Duration::from_micros(2_000));
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile_us(0.50), Some(10));
        assert_eq!(h.percentile_us(0.99), Some(2_500));
    }

    #[test]
    fn oversized_latency_hits_last_bucket() {
        // Samples beyond one second land in the overflow bucket, but the
        // reported percentile saturates at the last finite bound instead of
        // leaking u64::MAX into the protocol output.
        let h = LatencyHistogram::default();
        h.record(Duration::from_secs(3600));
        assert_eq!(h.percentile_us(1.0), Some(1_000_000));
    }

    #[test]
    fn model_metrics_render_contains_counters() {
        let m = ModelMetrics::default();
        m.record_ok(Duration::from_micros(30));
        m.record_ok(Duration::from_micros(40));
        m.record_error();
        m.record_shed();
        m.record_stopped();
        m.record_expired();
        m.record_degraded();
        m.record_degraded();
        m.record_panic();
        m.record_batch(2);
        let line = m.render("demo");
        assert!(line.contains("stat demo"), "{line}");
        assert!(line.contains("ok=2"), "{line}");
        assert!(line.contains("err=1"), "{line}");
        assert!(line.contains("shed=1"), "{line}");
        assert!(line.contains("stopped=1"), "{line}");
        assert!(line.contains("expired=1"), "{line}");
        assert!(line.contains("degraded=2"), "{line}");
        assert!(line.contains("panics=1"), "{line}");
        assert!(line.contains("mean_batch=2.00"), "{line}");
        assert!(line.contains("p50us=50"), "{line}");
    }

    #[test]
    fn hub_reuses_cells_per_name() {
        let hub = MetricsHub::new();
        let a = hub.for_model("m");
        let b = hub.for_model("m");
        assert!(Arc::ptr_eq(&a, &b));
        a.record_ok(Duration::from_micros(5));
        assert_eq!(b.ok.load(Ordering::Relaxed), 1);
        assert_eq!(hub.render_all().len(), 1);
    }
}
