//! The deployable model bundle: a trained RegHD model together with the
//! feature/target scalers fitted on the training data, so serving and
//! command-line tools accept and emit values in **original units**.
//!
//! # File layout
//!
//! Version 2 (written by this crate) wraps every payload in a CRC32-guarded
//! section so that a flipped bit anywhere in a stored bundle is caught at
//! load time rather than silently served:
//!
//! ```text
//! magic "RGCL" | version: u16 = 2
//! [scalers section] [canary section] [model section]
//! section := len: u64 | payload (len bytes) | crc32(payload): u32
//! ```
//!
//! * **scalers** — feature means/stds and the target scaler (v1 body).
//! * **canary** — up to [`CANARY_ROWS`] raw-unit reference rows captured at
//!   training time together with the model's own predictions for them. A
//!   reloaded bundle replays these rows and must reproduce the stored
//!   predictions **bit-exactly** before it is allowed to serve (see
//!   [`ModelBundle::run_canary`]); the registry rolls back to the previous
//!   version on mismatch.
//! * **model** — the embedded `reghd::persist` blob.
//!
//! Version 1 bundles (no checksums, no canary) remain loadable; they simply
//! skip the canary replay.
//!
//! The format is bit-exact across a round-trip: a loaded bundle predicts
//! identically to the one that was saved (see `reghd::persist` for why).
//!
//! This module originated in `reghd-cli` and moved here so the serving
//! registry and the CLI share one implementation.

use datasets::normalize::{Standardizer, TargetScaler};
use datasets::Dataset;
use encoding::EncoderSpec;
use hdc::rng::HdRng;
use reghd::config::{ClusterMode, PredictionMode, RegHdConfig};
use reghd::traits::FitReport;
use reghd::{persist, RegHdRegressor, Regressor};
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"RGCL";
const VERSION: u16 = 2;
/// Maximum number of reference rows stored in a bundle's canary section.
pub const CANARY_ROWS: usize = 8;

/// A trained model plus its data scalers and canary reference rows.
pub struct ModelBundle {
    // (Debug via the manual impl below: the model itself is the interesting
    // field, scalers are summarised.)
    model: RegHdRegressor,
    spec: EncoderSpec,
    feat_means: Vec<f32>,
    feat_stds: Vec<f32>,
    target_mean: f32,
    target_std: f32,
    canary_rows: Vec<Vec<f32>>,
    canary_preds: Vec<f32>,
}

impl std::fmt::Debug for ModelBundle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelBundle")
            .field("model", &self.model)
            .field("features", &self.feat_means.len())
            .field("target_mean", &self.target_mean)
            .field("target_std", &self.target_std)
            .field("canary_rows", &self.canary_rows.len())
            .finish()
    }
}

/// Trains a bundle on a raw-unit dataset. Returns the bundle together with
/// the fit report so callers (CLI, tests) decide what to print.
///
/// Up to [`CANARY_ROWS`] evenly spaced training rows are captured, together
/// with the freshly trained model's predictions for them, as the bundle's
/// canary section.
pub fn train(
    ds: &Dataset,
    dim: usize,
    models: usize,
    epochs: usize,
    seed: u64,
    quantized: bool,
) -> Result<(ModelBundle, FitReport), String> {
    train_with_threads(ds, dim, models, epochs, seed, quantized, 1)
}

/// [`train`] with a row-parallelism knob: the per-epoch encoding pass and
/// all batch predictions (including the canary capture) run on `threads`
/// threads (`0` = available parallelism, `1` = sequential). Rows are split
/// into contiguous chunks with per-row arithmetic unchanged, so the trained
/// bundle is **bit-identical** to [`train`]'s for every setting; the knob
/// stays set on the returned bundle.
#[allow(clippy::too_many_arguments)]
pub fn train_with_threads(
    ds: &Dataset,
    dim: usize,
    models: usize,
    epochs: usize,
    seed: u64,
    quantized: bool,
    threads: usize,
) -> Result<(ModelBundle, FitReport), String> {
    if ds.len() < 4 {
        return Err("need at least 4 samples to train".to_string());
    }
    let std = Standardizer::fit(ds);
    let normalised = std.transform(ds);
    let scaler = TargetScaler::fit(&ds.targets);
    let train_y: Vec<f32> = ds.targets.iter().map(|&y| scaler.transform(y)).collect();

    let spec = EncoderSpec::Nonlinear {
        input_dim: ds.num_features(),
        dim,
        seed: seed ^ 0xC11,
    };
    let mut builder = RegHdConfig::builder()
        .dim(dim)
        .models(models)
        .max_epochs(epochs)
        .seed(seed);
    if quantized {
        builder = builder
            .cluster_mode(ClusterMode::FrameworkBinary)
            .prediction_mode(PredictionMode::BinaryQuery);
    }
    let config = builder.build();
    let mut model = RegHdRegressor::new(config, spec.build());
    model.set_threads(threads);
    let report = model.fit(&normalised.features, &train_y);

    // Recover the fitted per-feature statistics by probing the
    // standardizer (a zero row maps to −μ/σ; a one row lets us solve σ).
    let zeros = vec![0.0f32; ds.num_features()];
    let ones = vec![1.0f32; ds.num_features()];
    let z = std.transform_row(&zeros);
    let o = std.transform_row(&ones);
    let mut feat_means = Vec::with_capacity(z.len());
    let mut feat_stds = Vec::with_capacity(z.len());
    for (&a, &b) in z.iter().zip(&o) {
        let inv_sigma = b - a; // (1−μ)/σ − (0−μ)/σ = 1/σ
        let sigma = if inv_sigma.abs() > 1e-12 {
            1.0 / inv_sigma
        } else {
            1.0
        };
        feat_stds.push(sigma);
        feat_means.push(-a * sigma);
    }

    let mut bundle = ModelBundle {
        model,
        spec,
        feat_means,
        feat_stds,
        target_mean: scaler.mean(),
        target_std: scaler.std(),
        canary_rows: Vec::new(),
        canary_preds: Vec::new(),
    };

    // Capture canary reference rows spread across the training set (raw
    // units, so the replay exercises the scalers too).
    let step = (ds.len() / CANARY_ROWS).max(1);
    let rows: Vec<Vec<f32>> = ds
        .features
        .iter()
        .step_by(step)
        .take(CANARY_ROWS)
        .cloned()
        .collect();
    let preds = bundle.predict(&rows)?;
    bundle.canary_rows = rows;
    bundle.canary_preds = preds;

    Ok((bundle, report))
}

impl ModelBundle {
    /// Wraps an already-trained model (the streaming trainer's snapshot
    /// path) into a bundle, capturing up to [`CANARY_ROWS`] of the given
    /// raw-unit rows — together with the model's own predictions for them —
    /// as the canary section.
    ///
    /// The model **must** have been built with the Nonlinear encoder at the
    /// derived seed `config.seed ^ 0xC11` (the convention every loader in
    /// this crate re-derives the spec from; [`train`] and the streaming
    /// trainer both follow it). A model built differently would serialise
    /// fine but fail its own canary replay on reload — caught, but late.
    ///
    /// # Errors
    ///
    /// Rejects mismatched scaler lengths, rows whose width disagrees with
    /// the scalers, and non-finite canary rows.
    pub fn from_trained(
        model: RegHdRegressor,
        feat_means: Vec<f32>,
        feat_stds: Vec<f32>,
        target_mean: f32,
        target_std: f32,
        canary_source: &[Vec<f32>],
    ) -> Result<Self, String> {
        if feat_means.len() != feat_stds.len() {
            return Err(format!(
                "feature means ({}) and stds ({}) disagree",
                feat_means.len(),
                feat_stds.len()
            ));
        }
        let spec = EncoderSpec::Nonlinear {
            input_dim: feat_means.len(),
            dim: model.config().dim,
            seed: model.config().seed ^ 0xC11,
        };
        let mut bundle = Self {
            model,
            spec,
            feat_means,
            feat_stds,
            target_mean,
            target_std,
            canary_rows: Vec::new(),
            canary_preds: Vec::new(),
        };
        let step = (canary_source.len() / CANARY_ROWS).max(1);
        let rows: Vec<Vec<f32>> = canary_source
            .iter()
            .step_by(step)
            .take(CANARY_ROWS)
            .cloned()
            .collect();
        let preds = bundle.predict(&rows)?;
        bundle.canary_rows = rows;
        bundle.canary_preds = preds;
        Ok(bundle)
    }

    /// Number of raw input features a prediction row must have.
    pub fn num_features(&self) -> usize {
        self.feat_means.len()
    }

    /// The trained regressor (configuration inspection for registry
    /// metadata).
    pub fn model(&self) -> &RegHdRegressor {
        &self.model
    }

    /// Sets the row-parallelism knob on the embedded model (`0` = available
    /// parallelism, `1` = sequential). Prediction batches are split across
    /// threads with per-row arithmetic unchanged, so [`ModelBundle::predict`]
    /// stays bit-identical for every setting — the canary replay in
    /// particular is unaffected. Takes `&self` so serving can turn the knob
    /// on a bundle already behind an `Arc`.
    pub fn set_threads(&self, threads: usize) {
        self.model.set_threads(threads);
    }

    /// Sets the encoder's trig evaluation mode (see [`hdc::TrigMode`]).
    /// `Fast` trades the documented bounded trig error for throughput on
    /// the inference path; [`ModelBundle::run_canary`] always forces
    /// `Exact` for its replay, so the knob never breaks bit-exact rollback
    /// checks. Takes `&self`, like the thread knob.
    pub fn set_trig_mode(&self, mode: hdc::TrigMode) {
        self.model.set_trig_mode(mode);
    }

    /// The embedded model's current trig evaluation mode.
    pub fn trig_mode(&self) -> hdc::TrigMode {
        self.model.trig_mode()
    }

    /// The target scaler's standard deviation — converts a standardised
    /// training RMSE back to original units.
    pub fn target_std(&self) -> f32 {
        self.target_std
    }

    /// Number of canary reference rows stored in this bundle (0 for
    /// bundles loaded from the v1 format).
    pub fn canary_len(&self) -> usize {
        self.canary_rows.len()
    }

    /// Per-feature means of the fitted standardizer (raw → model units).
    pub fn feat_means(&self) -> &[f32] {
        &self.feat_means
    }

    /// Per-feature standard deviations of the fitted standardizer.
    pub fn feat_stds(&self) -> &[f32] {
        &self.feat_stds
    }

    /// The target scaler's mean — pairs with [`ModelBundle::target_std`].
    pub fn target_mean(&self) -> f32 {
        self.target_mean
    }

    /// The stored canary reference rows (raw units).
    pub fn canary_rows(&self) -> &[Vec<f32>] {
        &self.canary_rows
    }

    /// The predictions recorded for the canary rows at save time.
    pub fn canary_preds(&self) -> &[f32] {
        &self.canary_preds
    }

    /// Approximate resident memory of the decoded bundle, in bytes: the
    /// integer and binary copies of both hypervector banks, the optional
    /// centre vector, scalers, and canary rows. Deterministic for a given
    /// shape, so eviction accounting and the `list` protocol report stable
    /// numbers.
    pub fn approx_mem_bytes(&self) -> usize {
        let cfg = self.model.config();
        let (dim, k) = (cfg.dim, cfg.models);
        let n = self.feat_means.len();
        // Integer (f32) + binary (packed bits) copies of k clusters and k
        // models, plus per-bank amplitude scalars.
        let banks = 2 * k * (dim * 4 + dim / 8 + 8);
        let center = if self.model.center().is_some() {
            dim * 4
        } else {
            0
        };
        let scalers = 2 * n * 4 + 8;
        let canary = self.canary_rows.len() * (n + 1) * 4;
        banks + center + scalers + canary + 256
    }

    /// Rebuilds a bundle from already-decoded parts, carrying the given
    /// canary section verbatim instead of recapturing it — the store's
    /// delta-application path, where the new canary ships inside the delta
    /// and the result must serialise **bit-identically** to the full bundle
    /// the trainer built. The encoder spec is re-derived from the model's
    /// config exactly as every loader does.
    ///
    /// # Errors
    ///
    /// Rejects mismatched scaler lengths and canary rows/preds that
    /// disagree in count or width (see [`ModelBundle::with_canary`]).
    pub fn from_parts_with_canary(
        model: RegHdRegressor,
        feat_means: Vec<f32>,
        feat_stds: Vec<f32>,
        target_mean: f32,
        target_std: f32,
        canary_rows: Vec<Vec<f32>>,
        canary_preds: Vec<f32>,
    ) -> Result<Self, String> {
        if feat_means.len() != feat_stds.len() {
            return Err(format!(
                "feature means ({}) and stds ({}) disagree",
                feat_means.len(),
                feat_stds.len()
            ));
        }
        Self::assemble(
            model,
            feat_means,
            feat_stds,
            target_mean,
            target_std,
            Vec::new(),
            Vec::new(),
        )
        .with_canary(canary_rows, canary_preds)
    }

    /// Standardises raw-unit rows, validating width and finiteness.
    fn scale_rows(&self, rows: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, String> {
        let expected = self.feat_means.len();
        let mut scaled = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            if row.len() != expected {
                return Err(format!(
                    "row has {} features, model expects {expected}",
                    row.len()
                ));
            }
            if let Some(j) = row.iter().position(|v| !v.is_finite()) {
                return Err(format!("row {i} has a non-finite feature at index {j}"));
            }
            scaled.push(
                row.iter()
                    .zip(self.feat_means.iter().zip(&self.feat_stds))
                    .map(|(&x, (&m, &s))| if s != 0.0 { (x - m) / s } else { x - m })
                    .collect::<Vec<f32>>(),
            );
        }
        Ok(scaled)
    }

    /// Predicts in original units for raw-unit feature rows. Rows with the
    /// wrong width or non-finite (NaN/Inf) features are rejected.
    pub fn predict(&self, rows: &[Vec<f32>]) -> Result<Vec<f32>, String> {
        let mut scratch = reghd::PredictScratch::default();
        self.predict_with(rows, &mut scratch)
    }

    /// [`ModelBundle::predict`] with caller-owned scratch buffers — the
    /// serving worker loop keeps one [`reghd::PredictScratch`] alive across
    /// micro-batches so the steady-state hot path allocates no encoded
    /// hypervectors per request. Bit-identical to `predict`.
    pub fn predict_with(
        &self,
        rows: &[Vec<f32>],
        scratch: &mut reghd::PredictScratch,
    ) -> Result<Vec<f32>, String> {
        let scaled = self.scale_rows(rows)?;
        // One blocked batched pass through the model — the hot path of the
        // serving worker pool.
        Ok(self
            .model
            .predict_batch_with(&scaled, scratch)
            .into_iter()
            .map(|y_std| y_std * self.target_std + self.target_mean)
            .collect())
    }

    /// Predicts through the **bit-packed binary tier** (§3.2 binary–binary:
    /// int8 encode, sign-packed query, Hamming similarity, popcount scores)
    /// regardless of the bundle's configured prediction mode. Serving uses
    /// the same implementation both when a client *requests* the
    /// low-latency tier and as its **degraded-mode** fallback when the
    /// full-precision path is unavailable (worker timeout, queue
    /// saturation, or a model flagged corrupt, where the binary path's
    /// holographic robustness is exactly the property the paper argues
    /// for).
    pub fn predict_binary(&self, rows: &[Vec<f32>]) -> Result<Vec<f32>, String> {
        let mut scratch = reghd::PredictScratch::default();
        self.predict_binary_with(rows, &mut scratch)
    }

    /// [`ModelBundle::predict_binary`] with caller-owned scratch buffers —
    /// the binary tier's zero-allocation serving entry point, matching
    /// [`ModelBundle::predict_with`].
    pub fn predict_binary_with(
        &self,
        rows: &[Vec<f32>],
        scratch: &mut reghd::PredictScratch,
    ) -> Result<Vec<f32>, String> {
        let scaled = self.scale_rows(rows)?;
        Ok(self
            .model
            .predict_batch_binary_with(&scaled, scratch)
            .into_iter()
            .map(|y_std| y_std * self.target_std + self.target_mean)
            .collect())
    }

    /// Alias for [`ModelBundle::predict_binary`], kept under the name the
    /// serving layer's fallback paths historically used.
    pub fn predict_degraded(&self, rows: &[Vec<f32>]) -> Result<Vec<f32>, String> {
        self.predict_binary(rows)
    }

    /// Replays the stored canary rows and checks the predictions against
    /// the values recorded at save time, **bit-exactly**. `Ok` for bundles
    /// without a canary section (v1). The registry runs this after every
    /// load/reload and refuses to swap in a model that fails.
    pub fn run_canary(&self) -> Result<(), String> {
        if self.canary_rows.is_empty() {
            return Ok(());
        }
        // The recorded predictions were captured in Exact trig mode; force
        // it for the replay so an operator's `Fast` knob cannot turn a
        // healthy bundle into a false canary failure, then restore.
        let saved = self.model.trig_mode();
        self.model.set_trig_mode(hdc::TrigMode::Exact);
        let got = self.predict(&self.canary_rows);
        self.model.set_trig_mode(saved);
        let got = got?;
        for (i, (&g, &e)) in got.iter().zip(&self.canary_preds).enumerate() {
            if g.to_bits() != e.to_bits() {
                return Err(format!("canary row {i} predicted {g}, bundle recorded {e}"));
            }
        }
        Ok(())
    }

    /// Replaces the canary section (lengths must agree). Test hook for
    /// crafting bundles whose checksums are valid but whose canary replay
    /// fails — the scenario that distinguishes the canary check from the
    /// load-time CRC check.
    pub fn with_canary(mut self, rows: Vec<Vec<f32>>, preds: Vec<f32>) -> Result<Self, String> {
        if rows.len() != preds.len() {
            return Err(format!(
                "canary rows ({}) and predictions ({}) disagree",
                rows.len(),
                preds.len()
            ));
        }
        if rows.len() > CANARY_ROWS {
            return Err(format!("at most {CANARY_ROWS} canary rows"));
        }
        if rows.iter().any(|r| r.len() != self.num_features()) {
            return Err("canary row width mismatch".to_string());
        }
        self.canary_rows = rows;
        self.canary_preds = preds;
        Ok(self)
    }

    /// Returns a copy of this bundle whose served hypervector state
    /// (cluster and model banks) has each component's sign flipped
    /// independently with probability `rate` — the §3 component-fault
    /// model applied to the *stored model* rather than the query. Also
    /// returns the number of flipped components. Scalers and canary rows
    /// are carried over unchanged, so the corrupted copy fails its canary
    /// replay (with overwhelming probability for any meaningful rate).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not within `[0, 1]`.
    pub fn with_model_faults(&self, rate: f64, seed: u64) -> (Self, usize) {
        let mut rng = HdRng::seed_from(seed);
        let mut clusters = self.model.clusters().integer_clusters().to_vec();
        let mut models = self.model.models().integer_models().to_vec();
        let mut flips = 0;
        for hv in clusters.iter_mut().chain(models.iter_mut()) {
            flips += hdc::noise::flip_signs_in_place(hv, rate, &mut rng);
        }
        let model = RegHdRegressor::from_parts(
            self.model.config().clone(),
            self.spec.build(),
            clusters,
            models,
            self.model.center().cloned(),
            self.model.intercept(),
        );
        (
            Self {
                model,
                spec: self.spec.clone(),
                feat_means: self.feat_means.clone(),
                feat_stds: self.feat_stds.clone(),
                target_mean: self.target_mean,
                target_std: self.target_std,
                canary_rows: self.canary_rows.clone(),
                canary_preds: self.canary_preds.clone(),
            },
            flips,
        )
    }

    /// CRC32 over the bundle's in-memory learned state (intercept, centre,
    /// cluster/model hypervectors, scalers). The registry records this at
    /// load time and periodically recomputes it to detect in-memory
    /// corruption of a served model.
    pub fn state_checksum(&self) -> u32 {
        let mut crc = Crc32::new();
        crc.update(&self.model.intercept().to_le_bytes());
        if let Some(c) = self.model.center() {
            update_f32s(&mut crc, c.as_slice());
        }
        for hv in self.model.clusters().integer_clusters() {
            update_f32s(&mut crc, hv.as_slice());
        }
        for hv in self.model.models().integer_models() {
            update_f32s(&mut crc, hv.as_slice());
        }
        update_f32s(&mut crc, &self.feat_means);
        update_f32s(&mut crc, &self.feat_stds);
        crc.update(&self.target_mean.to_le_bytes());
        crc.update(&self.target_std.to_le_bytes());
        crc.finalize()
    }

    /// Serialises the bundle to bytes (v2: CRC32-guarded sections).
    pub fn to_bytes(&self) -> Result<Vec<u8>, String> {
        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());

        let mut scalers: Vec<u8> = Vec::new();
        scalers.extend_from_slice(&(self.feat_means.len() as u64).to_le_bytes());
        for &m in &self.feat_means {
            scalers.extend_from_slice(&m.to_le_bytes());
        }
        for &s in &self.feat_stds {
            scalers.extend_from_slice(&s.to_le_bytes());
        }
        scalers.extend_from_slice(&self.target_mean.to_le_bytes());
        scalers.extend_from_slice(&self.target_std.to_le_bytes());
        write_section(&mut buf, &scalers);

        let mut canary: Vec<u8> = Vec::new();
        canary.extend_from_slice(&(self.canary_rows.len() as u64).to_le_bytes());
        for row in &self.canary_rows {
            for &v in row {
                canary.extend_from_slice(&v.to_le_bytes());
            }
        }
        for &p in &self.canary_preds {
            canary.extend_from_slice(&p.to_le_bytes());
        }
        write_section(&mut buf, &canary);

        let mut blob: Vec<u8> = Vec::new();
        persist::save(&self.model, &self.spec, &mut blob).map_err(|e| e.to_string())?;
        write_section(&mut buf, &blob);
        Ok(buf)
    }

    /// Deserialises a bundle from bytes (the hot-reload entry point: the
    /// registry hashes and loads from one in-memory copy). Reads both the
    /// checksummed v2 layout and the legacy v1 layout.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut r: &[u8] = bytes;
        let mut magic = [0u8; 4];
        read_exact(&mut r, &mut magic)?;
        if &magic != MAGIC {
            return Err("not a reghd-cli model bundle".to_string());
        }
        match read_u16(&mut r)? {
            1 => Self::read_v1(&mut r),
            2 => Self::read_v2(&mut r),
            v => Err(format!("unsupported bundle version {v}")),
        }
    }

    /// Legacy layout: scalers and model blob inline, no checksums, no
    /// canary.
    fn read_v1(r: &mut &[u8]) -> Result<Self, String> {
        let (feat_means, feat_stds, target_mean, target_std) = read_scalers(r)?;
        let model = persist::load(r).map_err(|e| e.to_string())?;
        Ok(Self::assemble(
            model,
            feat_means,
            feat_stds,
            target_mean,
            target_std,
            Vec::new(),
            Vec::new(),
        ))
    }

    fn read_v2(r: &mut &[u8]) -> Result<Self, String> {
        let scalers = read_section(r, "scalers")?;
        let canary = read_section(r, "canary")?;
        let blob = read_section(r, "model")?;
        if !r.is_empty() {
            return Err(format!("{} trailing bytes after model section", r.len()));
        }

        let mut s: &[u8] = &scalers;
        let (feat_means, feat_stds, target_mean, target_std) = read_scalers(&mut s)?;
        if !s.is_empty() {
            return Err("trailing bytes in scalers section".to_string());
        }

        let (canary_rows, canary_preds) = decode_canary_payload(&canary, feat_means.len())?;

        let mut b: &[u8] = &blob;
        let model = persist::load(&mut b).map_err(|e| e.to_string())?;
        Ok(Self::assemble(
            model,
            feat_means,
            feat_stds,
            target_mean,
            target_std,
            canary_rows,
            canary_preds,
        ))
    }

    /// Decodes only the sections the serving path needs — scalers and
    /// model — verifying each one's checksum on this first touch and
    /// leaving the canary section's bytes **unread and unverified**. This
    /// is the model store's lazy-CRC load path: a bundle whose canary
    /// section is corrupt on disk still loads and serves (the store
    /// already gated publication on a full-validation canary replay);
    /// the rot is surfaced the first time something *touches* that
    /// section ([`ModelBundle::attach_canary_from`]).
    ///
    /// The returned bundle has an empty canary section, so it must not be
    /// re-serialised as a source of truth — the store keeps the original
    /// bytes for that.
    ///
    /// v1 images have no section frames to skip and fall back to the full
    /// loader.
    pub fn decode_serving(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() >= 6 && &bytes[..4] == MAGIC && bytes[4..6] == 1u16.to_le_bytes() {
            let mut r: &[u8] = &bytes[6..];
            return Self::read_v1(&mut r);
        }
        let frames = SectionFrames::parse(bytes)?;
        let mut s: &[u8] = frames.scalers()?;
        let (feat_means, feat_stds, target_mean, target_std) = read_scalers(&mut s)?;
        if !s.is_empty() {
            return Err("trailing bytes in scalers section".to_string());
        }
        let mut b: &[u8] = frames.model()?;
        let model = persist::load(&mut b).map_err(|e| e.to_string())?;
        Ok(Self::assemble(
            model,
            feat_means,
            feat_stds,
            target_mean,
            target_std,
            Vec::new(),
            Vec::new(),
        ))
    }

    /// The deferred counterpart of [`ModelBundle::decode_serving`]:
    /// verifies the canary section's checksum (the section's first touch)
    /// and decodes it into this bundle, after which
    /// [`ModelBundle::run_canary`] replays it as usual.
    ///
    /// # Errors
    ///
    /// Checksum mismatch or malformed canary payload — the caller (the
    /// store's audit path) treats either as bundle rot and rolls the key
    /// back to its last-good version.
    pub fn attach_canary_from(&mut self, bytes: &[u8]) -> Result<(), String> {
        let frames = SectionFrames::parse(bytes)?;
        let payload = frames.canary()?;
        let (rows, preds) = decode_canary_payload(payload, self.num_features())?;
        self.canary_rows = rows;
        self.canary_preds = preds;
        Ok(())
    }

    fn assemble(
        model: RegHdRegressor,
        feat_means: Vec<f32>,
        feat_stds: Vec<f32>,
        target_mean: f32,
        target_std: f32,
        canary_rows: Vec<Vec<f32>>,
        canary_preds: Vec<f32>,
    ) -> Self {
        // The persist blob does not carry the spec back out; rebuild it
        // from the model's config (the CLI always uses the Nonlinear
        // encoder with the same derived seed).
        let spec = EncoderSpec::Nonlinear {
            input_dim: feat_means.len(),
            dim: model.config().dim,
            seed: model.config().seed ^ 0xC11,
        };
        Self {
            model,
            spec,
            feat_means,
            feat_stds,
            target_mean,
            target_std,
            canary_rows,
            canary_preds,
        }
    }

    /// Writes the bundle to a file.
    pub fn save(&self, path: &str) -> Result<(), String> {
        let buf = self.to_bytes()?;
        std::fs::File::create(path)
            .and_then(|mut f| f.write_all(&buf))
            .map_err(|e| format!("cannot write {path}: {e}"))
    }

    /// Reads a bundle from a file.
    pub fn load(path: &str) -> Result<Self, String> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| format!("cannot read {path}: {e}"))?;
        Self::from_bytes(&bytes)
    }
}

/// Shared scaler-block layout (v1 body / v2 scalers section payload).
fn read_scalers(r: &mut &[u8]) -> Result<(Vec<f32>, Vec<f32>, f32, f32), String> {
    let n = read_u64(r)? as usize;
    if n > 1 << 20 {
        return Err(format!("implausible feature count {n}"));
    }
    let mut feat_means = Vec::with_capacity(n);
    for _ in 0..n {
        feat_means.push(read_f32(r)?);
    }
    let mut feat_stds = Vec::with_capacity(n);
    for _ in 0..n {
        feat_stds.push(read_f32(r)?);
    }
    let target_mean = read_f32(r)?;
    let target_std = read_f32(r)?;
    Ok((feat_means, feat_stds, target_mean, target_std))
}

/// Shared canary-section payload layout (`rows:u64 | rows×n f32 | rows
/// f32`), decoded with the feature count from the scalers section.
fn decode_canary_payload(payload: &[u8], n: usize) -> Result<(Vec<Vec<f32>>, Vec<f32>), String> {
    let mut c: &[u8] = payload;
    let rows = read_u64(&mut c)? as usize;
    if rows > CANARY_ROWS {
        return Err(format!("implausible canary row count {rows}"));
    }
    let mut canary_rows = Vec::with_capacity(rows);
    for _ in 0..rows {
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            row.push(read_f32(&mut c)?);
        }
        canary_rows.push(row);
    }
    let mut canary_preds = Vec::with_capacity(rows);
    for _ in 0..rows {
        canary_preds.push(read_f32(&mut c)?);
    }
    if !c.is_empty() {
        return Err("trailing bytes in canary section".to_string());
    }
    Ok((canary_rows, canary_preds))
}

/// One `len | payload | crc` frame whose payload has been located but not
/// yet verified.
#[derive(Clone, Copy)]
struct Frame<'a> {
    payload: &'a [u8],
    stored_crc: u32,
}

impl<'a> Frame<'a> {
    /// Verifies the stored checksum and returns the payload — the point at
    /// which the section's bytes are actually read.
    fn verify(&self, name: &str) -> Result<&'a [u8], String> {
        let computed = crc32(self.payload);
        if self.stored_crc != computed {
            return Err(format!(
                "checksum mismatch in {name} section (stored {:08x}, computed {computed:08x})",
                self.stored_crc
            ));
        }
        Ok(self.payload)
    }
}

/// The three sections of a v2 bundle image, located by walking the length
/// prefixes only — **no checksum is computed** until a section accessor is
/// called. The model store memory-maps packfiles holding up to millions of
/// bundles; sweeping every image's full CRC at index-build time would read
/// every page, so integrity is checked per section on first touch instead.
pub struct SectionFrames<'a> {
    scalers: Frame<'a>,
    canary: Frame<'a>,
    model: Frame<'a>,
}

impl<'a> SectionFrames<'a> {
    /// Walks the section headers of a v2 image. Cheap: reads the magic,
    /// version, and three length fields — O(1) regardless of bundle size.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, String> {
        let mut r: &[u8] = bytes;
        let mut magic = [0u8; 4];
        read_exact(&mut r, &mut magic)?;
        if &magic != MAGIC {
            return Err("not a reghd-cli model bundle".to_string());
        }
        let v = read_u16(&mut r)?;
        if v != VERSION {
            return Err(format!("section frames need a v2 bundle (got v{v})"));
        }
        let scalers = locate_frame(&mut r, "scalers")?;
        let canary = locate_frame(&mut r, "canary")?;
        let model = locate_frame(&mut r, "model")?;
        if !r.is_empty() {
            return Err(format!("{} trailing bytes after model section", r.len()));
        }
        Ok(Self {
            scalers,
            canary,
            model,
        })
    }

    /// Verifies and returns the scalers section payload.
    pub fn scalers(&self) -> Result<&'a [u8], String> {
        self.scalers.verify("scalers")
    }

    /// Verifies and returns the canary section payload.
    pub fn canary(&self) -> Result<&'a [u8], String> {
        self.canary.verify("canary")
    }

    /// Verifies and returns the model section payload.
    pub fn model(&self) -> Result<&'a [u8], String> {
        self.model.verify("model")
    }

    /// The canary section's row-count header, read **without** verifying
    /// the section checksum — metadata for lazily decoded store entries,
    /// where touching (and thus CRC-sweeping) the canary bytes is exactly
    /// what the lazy path avoids. `0` for an empty/malformed header.
    pub fn canary_rows_hint(&self) -> usize {
        let p = self.canary.payload;
        if p.len() < 8 {
            return 0;
        }
        let rows = u64::from_le_bytes(p[..8].try_into().unwrap()) as usize;
        if rows > CANARY_ROWS {
            0
        } else {
            rows
        }
    }
}

/// Locates one `len | payload | crc` frame without computing the checksum.
fn locate_frame<'a>(r: &mut &'a [u8], name: &str) -> Result<Frame<'a>, String> {
    let len = read_u64(r)? as usize;
    if r.len() < len + 4 {
        return Err(format!("truncated bundle ({name} section)"));
    }
    let payload = &r[..len];
    *r = &r[len..];
    let mut cb = [0u8; 4];
    read_exact(r, &mut cb)?;
    Ok(Frame {
        payload,
        stored_crc: u32::from_le_bytes(cb),
    })
}

fn write_section(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// Reads one `len | payload | crc` section, verifying the checksum.
fn read_section(r: &mut &[u8], name: &str) -> Result<Vec<u8>, String> {
    let len = read_u64(r)? as usize;
    if r.len() < len + 4 {
        return Err(format!("truncated bundle ({name} section)"));
    }
    let payload = r[..len].to_vec();
    *r = &r[len..];
    let mut cb = [0u8; 4];
    read_exact(r, &mut cb)?;
    let stored = u32::from_le_bytes(cb);
    let computed = crc32(&payload);
    if stored != computed {
        return Err(format!(
            "checksum mismatch in {name} section (stored {stored:08x}, computed {computed:08x})"
        ));
    }
    Ok(payload)
}

fn read_exact(r: &mut &[u8], buf: &mut [u8]) -> Result<(), String> {
    if r.len() < buf.len() {
        return Err("truncated bundle".to_string());
    }
    buf.copy_from_slice(&r[..buf.len()]);
    *r = &r[buf.len()..];
    Ok(())
}

fn read_u16(r: &mut &[u8]) -> Result<u16, String> {
    let mut b = [0u8; 2];
    read_exact(r, &mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u64(r: &mut &[u8]) -> Result<u64, String> {
    let mut b = [0u8; 8];
    read_exact(r, &mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f32(r: &mut &[u8]) -> Result<f32, String> {
    let mut b = [0u8; 4];
    read_exact(r, &mut b)?;
    Ok(f32::from_le_bytes(b))
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3 polynomial, reflected). Implemented locally: the
// workspace takes no external dependency for 20 lines of table-driven
// arithmetic, and bundle integrity must not hinge on an optional crate.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// Streaming CRC32 state (used by [`ModelBundle::state_checksum`], which
/// hashes the learned state without serialising it).
struct Crc32 {
    state: u32,
}

impl Crc32 {
    fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = CRC_TABLE[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    fn finalize(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

fn update_f32s(crc: &mut Crc32, vals: &[f32]) {
    for &v in vals {
        crc.update(&v.to_le_bytes());
    }
}

/// CRC32 (IEEE) of `bytes` — the checksum written after each v2 section.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{corrupt_bytes, ByteFault};

    fn toy_dataset() -> Dataset {
        let features: Vec<Vec<f32>> = (0..80)
            .map(|i| vec![i as f32, (i % 7) as f32 * 10.0])
            .collect();
        let targets: Vec<f32> = features.iter().map(|r| 3.0 * r[0] - r[1] + 100.0).collect();
        Dataset::new("toy", features, targets)
    }

    /// Serialises `b` in the legacy v1 layout (inline scalers + blob, no
    /// checksums) so backward compatibility is tested without a fixture
    /// file.
    fn to_bytes_v1(b: &ModelBundle) -> Vec<u8> {
        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.extend_from_slice(&(b.feat_means.len() as u64).to_le_bytes());
        for &m in &b.feat_means {
            buf.extend_from_slice(&m.to_le_bytes());
        }
        for &s in &b.feat_stds {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        buf.extend_from_slice(&b.target_mean.to_le_bytes());
        buf.extend_from_slice(&b.target_std.to_le_bytes());
        persist::save(&b.model, &b.spec, &mut buf).unwrap();
        buf
    }

    #[test]
    fn train_predict_in_original_units() {
        let ds = toy_dataset();
        let (bundle, report) = train(&ds, 512, 2, 15, 1, false).unwrap();
        assert!(report.epochs >= 1);
        let preds = bundle.predict(&ds.features).unwrap();
        let mse = datasets::metrics::mse(&preds, &ds.targets);
        let var = ds.target_variance();
        assert!(mse < 0.1 * var, "mse {mse} vs var {var}");
    }

    #[test]
    fn threaded_training_is_bit_identical_to_sequential() {
        let ds = toy_dataset();
        let (seq, _) = train(&ds, 512, 2, 10, 1, false).unwrap();
        for threads in [0, 2, 4] {
            let (par, _) = train_with_threads(&ds, 512, 2, 10, 1, false, threads).unwrap();
            // Same bytes on disk, same predictions to the bit.
            assert_eq!(par.to_bytes().unwrap(), seq.to_bytes().unwrap());
            assert_eq!(
                par.predict(&ds.features).unwrap(),
                seq.predict(&ds.features).unwrap(),
                "threads={threads}"
            );
            par.run_canary().unwrap();
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let ds = toy_dataset();
        let (bundle, _) = train(&ds, 512, 2, 10, 2, true).unwrap();
        let path = std::env::temp_dir().join("reghd_serve_bundle_test.rghd");
        let path_str = path.to_str().unwrap();
        bundle.save(path_str).unwrap();
        let loaded = ModelBundle::load(path_str).unwrap();
        let a = bundle.predict(&ds.features[..5]).unwrap();
        let b = loaded.predict(&ds.features[..5]).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn byte_roundtrip_is_bit_exact() {
        let ds = toy_dataset();
        let (bundle, _) = train(&ds, 256, 2, 6, 9, false).unwrap();
        let bytes = bundle.to_bytes().unwrap();
        let loaded = ModelBundle::from_bytes(&bytes).unwrap();
        assert_eq!(loaded.to_bytes().unwrap(), bytes);
        assert_eq!(
            bundle.predict(&ds.features[..3]).unwrap(),
            loaded.predict(&ds.features[..3]).unwrap()
        );
    }

    #[test]
    fn v1_bundle_still_loads() {
        let ds = toy_dataset();
        let (bundle, _) = train(&ds, 256, 2, 6, 4, false).unwrap();
        let legacy = to_bytes_v1(&bundle);
        let loaded = ModelBundle::from_bytes(&legacy).unwrap();
        assert_eq!(loaded.canary_len(), 0);
        loaded.run_canary().unwrap(); // vacuous for v1, must not error
        assert_eq!(
            bundle.predict(&ds.features[..5]).unwrap(),
            loaded.predict(&ds.features[..5]).unwrap()
        );
        // Re-saving a v1 load upgrades it to the checksummed v2 layout.
        let upgraded = loaded.to_bytes().unwrap();
        assert_eq!(&upgraded[4..6], &2u16.to_le_bytes());
    }

    #[test]
    fn flipped_payload_byte_rejected_with_checksum_error() {
        let ds = toy_dataset();
        let (bundle, _) = train(&ds, 256, 2, 6, 5, false).unwrap();
        let bytes = bundle.to_bytes().unwrap();
        // Flip a byte deep inside the model section payload.
        let mut corrupted = bytes.clone();
        let idx = corrupted.len() - 100;
        corrupted[idx] ^= 0x40;
        let err = ModelBundle::from_bytes(&corrupted).unwrap_err();
        assert!(err.contains("checksum mismatch"), "err: {err}");
        // And the scalers section near the front.
        let mut corrupted = bytes.clone();
        corrupted[20] ^= 0x01;
        let err = ModelBundle::from_bytes(&corrupted).unwrap_err();
        assert!(err.contains("checksum mismatch"), "err: {err}");
    }

    #[test]
    fn random_corruption_never_loads() {
        // Whatever a random flip or truncation hits (payload, length
        // field, crc), the load must fail — never a silently wrong model.
        let ds = toy_dataset();
        let (bundle, _) = train(&ds, 256, 1, 5, 6, false).unwrap();
        let bytes = bundle.to_bytes().unwrap();
        let mut rng = HdRng::seed_from(77);
        for _ in 0..20 {
            let mut b = bytes.clone();
            corrupt_bytes(&mut b, ByteFault::FlipByte, &mut rng);
            assert!(ModelBundle::from_bytes(&b).is_err());
        }
        for _ in 0..20 {
            let mut b = bytes.clone();
            corrupt_bytes(&mut b, ByteFault::Truncate, &mut rng);
            assert!(ModelBundle::from_bytes(&b).is_err());
        }
    }

    #[test]
    fn from_trained_online_snapshot_roundtrips_with_passing_canary() {
        // Mirror the streaming trainer's checkpoint path: train online,
        // quantise, snapshot, wrap with identity scalers, round-trip.
        let seed = 21u64;
        let spec = EncoderSpec::Nonlinear {
            input_dim: 2,
            dim: 256,
            seed: seed ^ 0xC11,
        };
        let cfg = RegHdConfig::builder().dim(256).models(2).seed(seed).build();
        let mut online = reghd::OnlineRegHd::new(cfg, spec.build());
        let rows: Vec<Vec<f32>> = (0..50).map(|i| vec![i as f32 / 50.0, 1.0]).collect();
        for r in &rows {
            online.update(r, r[0] * 3.0 - 1.0);
        }
        online.quantize_now();
        let snapshot = online.snapshot(&spec);

        let bundle =
            ModelBundle::from_trained(snapshot, vec![0.0; 2], vec![1.0; 2], 0.0, 1.0, &rows)
                .unwrap();
        assert!(bundle.canary_len() > 0);
        bundle.run_canary().unwrap();

        let loaded = ModelBundle::from_bytes(&bundle.to_bytes().unwrap()).unwrap();
        loaded.run_canary().unwrap();
        assert_eq!(
            bundle.predict(&rows[..5]).unwrap(),
            loaded.predict(&rows[..5]).unwrap()
        );
    }

    #[test]
    fn from_trained_rejects_mismatched_scalers() {
        let ds = toy_dataset();
        let (bundle, _) = train(&ds, 256, 1, 5, 3, false).unwrap();
        let model = ModelBundle::from_bytes(&bundle.to_bytes().unwrap())
            .unwrap()
            .model;
        let err =
            ModelBundle::from_trained(model, vec![0.0; 2], vec![1.0; 3], 0.0, 1.0, &ds.features)
                .unwrap_err();
        assert!(err.contains("disagree"), "err: {err}");
    }

    #[test]
    fn canary_replay_passes_on_clean_roundtrip() {
        let ds = toy_dataset();
        let (bundle, _) = train(&ds, 256, 2, 6, 7, false).unwrap();
        assert!(bundle.canary_len() > 0);
        bundle.run_canary().unwrap();
        let loaded = ModelBundle::from_bytes(&bundle.to_bytes().unwrap()).unwrap();
        assert_eq!(loaded.canary_len(), bundle.canary_len());
        loaded.run_canary().unwrap();
    }

    #[test]
    fn canary_detects_model_faults() {
        let ds = toy_dataset();
        let (bundle, _) = train(&ds, 256, 2, 6, 8, false).unwrap();
        let (faulty, flips) = bundle.with_model_faults(0.2, 99);
        assert!(flips > 0);
        let err = faulty.run_canary().unwrap_err();
        assert!(err.contains("canary row"), "err: {err}");
    }

    #[test]
    fn crafted_canary_mismatch_fails_despite_valid_checksums() {
        let ds = toy_dataset();
        let (bundle, _) = train(&ds, 256, 2, 6, 10, false).unwrap();
        let rows = vec![ds.features[0].clone()];
        let wrong = vec![bundle.predict(&rows).unwrap()[0] + 1.0];
        let crafted = bundle.with_canary(rows, wrong).unwrap();
        // The bytes are internally consistent — checksums pass …
        let loaded = ModelBundle::from_bytes(&crafted.to_bytes().unwrap()).unwrap();
        // … but the replay does not.
        assert!(loaded.run_canary().is_err());
    }

    /// Byte offset of the canary section's payload within a v2 image.
    fn canary_payload_offset(bytes: &[u8]) -> usize {
        let scalers_len = u64::from_le_bytes(bytes[6..14].try_into().unwrap()) as usize;
        6 + 8 + scalers_len + 4 + 8
    }

    #[test]
    fn decode_serving_skips_canary_checksum() {
        let ds = toy_dataset();
        let (bundle, _) = train(&ds, 256, 2, 6, 13, false).unwrap();
        let mut bytes = bundle.to_bytes().unwrap();
        // Rot a byte inside the canary payload: the eager loader rejects
        // the image …
        let rot = canary_payload_offset(&bytes) + 9;
        bytes[rot] ^= 0x80;
        let err = ModelBundle::from_bytes(&bytes).unwrap_err();
        assert!(err.contains("canary section"), "err: {err}");
        // … but the serving decode never touches that section, loads, and
        // predicts identically to the clean bundle.
        let served = ModelBundle::decode_serving(&bytes).unwrap();
        assert_eq!(served.canary_len(), 0);
        assert_eq!(
            served.predict(&ds.features[..5]).unwrap(),
            bundle.predict(&ds.features[..5]).unwrap()
        );
        // First touch of the rotten section fails cleanly.
        let mut served = served;
        let err = served.attach_canary_from(&bytes).unwrap_err();
        assert!(err.contains("checksum mismatch"), "err: {err}");
    }

    #[test]
    fn decode_serving_rejects_corrupt_model_section() {
        let ds = toy_dataset();
        let (bundle, _) = train(&ds, 256, 2, 6, 14, false).unwrap();
        let mut bytes = bundle.to_bytes().unwrap();
        let idx = bytes.len() - 100;
        bytes[idx] ^= 0x20;
        let err = ModelBundle::decode_serving(&bytes).unwrap_err();
        assert!(err.contains("model section"), "err: {err}");
    }

    #[test]
    fn attach_canary_restores_replayable_canary() {
        let ds = toy_dataset();
        let (bundle, _) = train(&ds, 256, 2, 6, 15, false).unwrap();
        let bytes = bundle.to_bytes().unwrap();
        let mut served = ModelBundle::decode_serving(&bytes).unwrap();
        assert_eq!(served.canary_len(), 0);
        served.run_canary().unwrap(); // vacuous without the section
        served.attach_canary_from(&bytes).unwrap();
        assert_eq!(served.canary_len(), bundle.canary_len());
        served.run_canary().unwrap();
    }

    #[test]
    fn decode_serving_loads_v1_images() {
        let ds = toy_dataset();
        let (bundle, _) = train(&ds, 256, 1, 5, 16, false).unwrap();
        let legacy = to_bytes_v1(&bundle);
        let served = ModelBundle::decode_serving(&legacy).unwrap();
        assert_eq!(
            served.predict(&ds.features[..3]).unwrap(),
            bundle.predict(&ds.features[..3]).unwrap()
        );
    }

    #[test]
    fn from_parts_with_canary_reserialises_bit_exact() {
        let ds = toy_dataset();
        let (bundle, _) = train(&ds, 256, 2, 6, 17, false).unwrap();
        let bytes = bundle.to_bytes().unwrap();
        let loaded = ModelBundle::from_bytes(&bytes).unwrap();
        let rebuilt = ModelBundle::from_parts_with_canary(
            RegHdRegressor::from_parts(
                loaded.model.config().clone(),
                loaded.spec.build(),
                loaded.model.clusters().integer_clusters().to_vec(),
                loaded.model.models().integer_models().to_vec(),
                loaded.model.center().cloned(),
                loaded.model.intercept(),
            ),
            loaded.feat_means.clone(),
            loaded.feat_stds.clone(),
            loaded.target_mean,
            loaded.target_std,
            loaded.canary_rows.clone(),
            loaded.canary_preds.clone(),
        )
        .unwrap();
        assert_eq!(rebuilt.to_bytes().unwrap(), bytes);
        rebuilt.run_canary().unwrap();
    }

    #[test]
    fn approx_mem_is_stable_and_plausible() {
        let ds = toy_dataset();
        let (bundle, _) = train(&ds, 512, 2, 6, 18, false).unwrap();
        let mem = bundle.approx_mem_bytes();
        // 2 banks × 2 copies × 512 dims of f32 is the dominant term.
        assert!(mem > 2 * 2 * 512 * 4, "mem {mem}");
        assert!(mem < 1 << 20, "mem {mem}");
        let loaded = ModelBundle::from_bytes(&bundle.to_bytes().unwrap()).unwrap();
        assert_eq!(loaded.approx_mem_bytes(), mem);
    }

    #[test]
    fn state_checksum_tracks_corruption() {
        let ds = toy_dataset();
        let (bundle, _) = train(&ds, 256, 2, 6, 11, false).unwrap();
        let clean = bundle.state_checksum();
        // Stable across serialisation.
        let loaded = ModelBundle::from_bytes(&bundle.to_bytes().unwrap()).unwrap();
        assert_eq!(loaded.state_checksum(), clean);
        // Changed by even a low-rate fault.
        let (faulty, _) = bundle.with_model_faults(0.01, 3);
        assert_ne!(faulty.state_checksum(), clean);
    }

    #[test]
    fn degraded_predictions_are_finite_original_units() {
        let ds = toy_dataset();
        let (bundle, _) = train(&ds, 512, 2, 15, 12, false).unwrap();
        let full = bundle.predict(&ds.features[..10]).unwrap();
        let degraded = bundle.predict_degraded(&ds.features[..10]).unwrap();
        assert_eq!(degraded.len(), 10);
        assert!(degraded.iter().all(|p| p.is_finite()));
        // Same units, same regime: both should straddle the target range.
        let var = ds.target_variance();
        for (f, d) in full.iter().zip(&degraded) {
            assert!((f - d).abs() < 4.0 * var.sqrt(), "full {f} vs degraded {d}");
        }
    }

    #[test]
    fn predict_rejects_wrong_width() {
        let ds = toy_dataset();
        let (bundle, _) = train(&ds, 256, 1, 5, 3, false).unwrap();
        let err = bundle.predict(&[vec![1.0]]).unwrap_err();
        assert!(err.contains("expects 2"));
    }

    #[test]
    fn predict_rejects_non_finite_features() {
        let ds = toy_dataset();
        let (bundle, _) = train(&ds, 256, 1, 5, 3, false).unwrap();
        let err = bundle.predict(&[vec![1.0, f32::NAN]]).unwrap_err();
        assert!(err.contains("non-finite"), "err: {err}");
        let err = bundle
            .predict(&[vec![1.0, 2.0], vec![f32::INFINITY, 0.0]])
            .unwrap_err();
        assert!(err.contains("row 1"), "err: {err}");
        let err = bundle.predict_degraded(&[vec![1.0, f32::NAN]]).unwrap_err();
        assert!(err.contains("non-finite"), "err: {err}");
    }

    #[test]
    fn load_rejects_garbage() {
        let path = std::env::temp_dir().join("reghd_serve_garbage_test.rghd");
        std::fs::write(&path, b"not a model").unwrap();
        let err = ModelBundle::load(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("not a reghd-cli"), "err: {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tiny_dataset_rejected() {
        let ds = Dataset::new("t", vec![vec![1.0]; 2], vec![0.0; 2]);
        assert!(train(&ds, 64, 1, 2, 0, false).is_err());
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn bundle_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelBundle>();
    }
}
