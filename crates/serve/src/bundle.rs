//! The deployable model bundle: a trained RegHD model together with the
//! feature/target scalers fitted on the training data, so serving and
//! command-line tools accept and emit values in **original units**.
//!
//! File layout: magic `RGCL`, version, feature scaler block, target scaler
//! block, then the embedded `reghd::persist` model blob. The format is
//! bit-exact across a round-trip: a loaded bundle predicts identically to
//! the one that was saved (see `reghd::persist` for why).
//!
//! This module originated in `reghd-cli` and moved here so the serving
//! registry and the CLI share one implementation.

use datasets::normalize::{Standardizer, TargetScaler};
use datasets::Dataset;
use encoding::EncoderSpec;
use reghd::config::{ClusterMode, PredictionMode, RegHdConfig};
use reghd::traits::FitReport;
use reghd::{persist, RegHdRegressor, Regressor};
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"RGCL";
const VERSION: u16 = 1;

/// A trained model plus its data scalers.
pub struct ModelBundle {
    // (Debug via the manual impl below: the model itself is the interesting
    // field, scalers are summarised.)
    model: RegHdRegressor,
    spec: EncoderSpec,
    feat_means: Vec<f32>,
    feat_stds: Vec<f32>,
    target_mean: f32,
    target_std: f32,
}

impl std::fmt::Debug for ModelBundle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelBundle")
            .field("model", &self.model)
            .field("features", &self.feat_means.len())
            .field("target_mean", &self.target_mean)
            .field("target_std", &self.target_std)
            .finish()
    }
}

/// Trains a bundle on a raw-unit dataset. Returns the bundle together with
/// the fit report so callers (CLI, tests) decide what to print.
pub fn train(
    ds: &Dataset,
    dim: usize,
    models: usize,
    epochs: usize,
    seed: u64,
    quantized: bool,
) -> Result<(ModelBundle, FitReport), String> {
    if ds.len() < 4 {
        return Err("need at least 4 samples to train".to_string());
    }
    let std = Standardizer::fit(ds);
    let normalised = std.transform(ds);
    let scaler = TargetScaler::fit(&ds.targets);
    let train_y: Vec<f32> = ds.targets.iter().map(|&y| scaler.transform(y)).collect();

    let spec = EncoderSpec::Nonlinear {
        input_dim: ds.num_features(),
        dim,
        seed: seed ^ 0xC11,
    };
    let mut builder = RegHdConfig::builder()
        .dim(dim)
        .models(models)
        .max_epochs(epochs)
        .seed(seed);
    if quantized {
        builder = builder
            .cluster_mode(ClusterMode::FrameworkBinary)
            .prediction_mode(PredictionMode::BinaryQuery);
    }
    let config = builder.build();
    let mut model = RegHdRegressor::new(config, spec.build());
    let report = model.fit(&normalised.features, &train_y);

    // Recover the fitted per-feature statistics by probing the
    // standardizer (a zero row maps to −μ/σ; a one row lets us solve σ).
    let zeros = vec![0.0f32; ds.num_features()];
    let ones = vec![1.0f32; ds.num_features()];
    let z = std.transform_row(&zeros);
    let o = std.transform_row(&ones);
    let mut feat_means = Vec::with_capacity(z.len());
    let mut feat_stds = Vec::with_capacity(z.len());
    for (&a, &b) in z.iter().zip(&o) {
        let inv_sigma = b - a; // (1−μ)/σ − (0−μ)/σ = 1/σ
        let sigma = if inv_sigma.abs() > 1e-12 {
            1.0 / inv_sigma
        } else {
            1.0
        };
        feat_stds.push(sigma);
        feat_means.push(-a * sigma);
    }

    Ok((
        ModelBundle {
            model,
            spec,
            feat_means,
            feat_stds,
            target_mean: scaler.mean(),
            target_std: scaler.std(),
        },
        report,
    ))
}

impl ModelBundle {
    /// Number of raw input features a prediction row must have.
    pub fn num_features(&self) -> usize {
        self.feat_means.len()
    }

    /// The trained regressor (configuration inspection for registry
    /// metadata).
    pub fn model(&self) -> &RegHdRegressor {
        &self.model
    }

    /// The target scaler's standard deviation — converts a standardised
    /// training RMSE back to original units.
    pub fn target_std(&self) -> f32 {
        self.target_std
    }

    /// Predicts in original units for raw-unit feature rows.
    pub fn predict(&self, rows: &[Vec<f32>]) -> Result<Vec<f32>, String> {
        let expected = self.feat_means.len();
        let mut scaled = Vec::with_capacity(rows.len());
        for row in rows {
            if row.len() != expected {
                return Err(format!(
                    "row has {} features, model expects {expected}",
                    row.len()
                ));
            }
            scaled.push(
                row.iter()
                    .zip(self.feat_means.iter().zip(&self.feat_stds))
                    .map(|(&x, (&m, &s))| if s != 0.0 { (x - m) / s } else { x - m })
                    .collect::<Vec<f32>>(),
            );
        }
        // One batched pass through the model (shared scratch buffers in
        // RegHdRegressor::predict_batch) — the hot path of the serving
        // worker pool.
        Ok(self
            .model
            .predict_batch(&scaled)
            .into_iter()
            .map(|y_std| y_std * self.target_std + self.target_mean)
            .collect())
    }

    /// Serialises the bundle to bytes.
    pub fn to_bytes(&self) -> Result<Vec<u8>, String> {
        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&(self.feat_means.len() as u64).to_le_bytes());
        for &m in &self.feat_means {
            buf.extend_from_slice(&m.to_le_bytes());
        }
        for &s in &self.feat_stds {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        buf.extend_from_slice(&self.target_mean.to_le_bytes());
        buf.extend_from_slice(&self.target_std.to_le_bytes());
        persist::save(&self.model, &self.spec, &mut buf).map_err(|e| e.to_string())?;
        Ok(buf)
    }

    /// Deserialises a bundle from bytes (the hot-reload entry point: the
    /// registry hashes and loads from one in-memory copy).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut r: &[u8] = bytes;
        let mut magic = [0u8; 4];
        read_exact(&mut r, &mut magic)?;
        if &magic != MAGIC {
            return Err("not a reghd-cli model bundle".to_string());
        }
        let version = read_u16(&mut r)?;
        if version != VERSION {
            return Err(format!("unsupported bundle version {version}"));
        }
        let n = read_u64(&mut r)? as usize;
        if n > 1 << 20 {
            return Err(format!("implausible feature count {n}"));
        }
        let mut feat_means = Vec::with_capacity(n);
        for _ in 0..n {
            feat_means.push(read_f32(&mut r)?);
        }
        let mut feat_stds = Vec::with_capacity(n);
        for _ in 0..n {
            feat_stds.push(read_f32(&mut r)?);
        }
        let target_mean = read_f32(&mut r)?;
        let target_std = read_f32(&mut r)?;
        let model = persist::load(&mut r).map_err(|e| e.to_string())?;
        // The persist blob does not carry the spec back out; rebuild it
        // from the model's config (the CLI always uses the Nonlinear
        // encoder with the same derived seed).
        let spec = EncoderSpec::Nonlinear {
            input_dim: n,
            dim: model.config().dim,
            seed: model.config().seed ^ 0xC11,
        };
        Ok(Self {
            model,
            spec,
            feat_means,
            feat_stds,
            target_mean,
            target_std,
        })
    }

    /// Writes the bundle to a file.
    pub fn save(&self, path: &str) -> Result<(), String> {
        let buf = self.to_bytes()?;
        std::fs::File::create(path)
            .and_then(|mut f| f.write_all(&buf))
            .map_err(|e| format!("cannot write {path}: {e}"))
    }

    /// Reads a bundle from a file.
    pub fn load(path: &str) -> Result<Self, String> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| format!("cannot read {path}: {e}"))?;
        Self::from_bytes(&bytes)
    }
}

fn read_exact(r: &mut &[u8], buf: &mut [u8]) -> Result<(), String> {
    if r.len() < buf.len() {
        return Err("truncated bundle".to_string());
    }
    buf.copy_from_slice(&r[..buf.len()]);
    *r = &r[buf.len()..];
    Ok(())
}

fn read_u16(r: &mut &[u8]) -> Result<u16, String> {
    let mut b = [0u8; 2];
    read_exact(r, &mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u64(r: &mut &[u8]) -> Result<u64, String> {
    let mut b = [0u8; 8];
    read_exact(r, &mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f32(r: &mut &[u8]) -> Result<f32, String> {
    let mut b = [0u8; 4];
    read_exact(r, &mut b)?;
    Ok(f32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset() -> Dataset {
        let features: Vec<Vec<f32>> = (0..80)
            .map(|i| vec![i as f32, (i % 7) as f32 * 10.0])
            .collect();
        let targets: Vec<f32> = features.iter().map(|r| 3.0 * r[0] - r[1] + 100.0).collect();
        Dataset::new("toy", features, targets)
    }

    #[test]
    fn train_predict_in_original_units() {
        let ds = toy_dataset();
        let (bundle, report) = train(&ds, 512, 2, 15, 1, false).unwrap();
        assert!(report.epochs >= 1);
        let preds = bundle.predict(&ds.features).unwrap();
        let mse = datasets::metrics::mse(&preds, &ds.targets);
        let var = ds.target_variance();
        assert!(mse < 0.1 * var, "mse {mse} vs var {var}");
    }

    #[test]
    fn save_load_roundtrip() {
        let ds = toy_dataset();
        let (bundle, _) = train(&ds, 512, 2, 10, 2, true).unwrap();
        let path = std::env::temp_dir().join("reghd_serve_bundle_test.rghd");
        let path_str = path.to_str().unwrap();
        bundle.save(path_str).unwrap();
        let loaded = ModelBundle::load(path_str).unwrap();
        let a = bundle.predict(&ds.features[..5]).unwrap();
        let b = loaded.predict(&ds.features[..5]).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn byte_roundtrip_is_bit_exact() {
        let ds = toy_dataset();
        let (bundle, _) = train(&ds, 256, 2, 6, 9, false).unwrap();
        let bytes = bundle.to_bytes().unwrap();
        let loaded = ModelBundle::from_bytes(&bytes).unwrap();
        assert_eq!(loaded.to_bytes().unwrap(), bytes);
        assert_eq!(
            bundle.predict(&ds.features[..3]).unwrap(),
            loaded.predict(&ds.features[..3]).unwrap()
        );
    }

    #[test]
    fn predict_rejects_wrong_width() {
        let ds = toy_dataset();
        let (bundle, _) = train(&ds, 256, 1, 5, 3, false).unwrap();
        let err = bundle.predict(&[vec![1.0]]).unwrap_err();
        assert!(err.contains("expects 2"));
    }

    #[test]
    fn load_rejects_garbage() {
        let path = std::env::temp_dir().join("reghd_serve_garbage_test.rghd");
        std::fs::write(&path, b"not a model").unwrap();
        let err = ModelBundle::load(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("not a reghd-cli"), "err: {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tiny_dataset_rejected() {
        let ds = Dataset::new("t", vec![vec![1.0]; 2], vec![0.0; 2]);
        assert!(train(&ds, 64, 1, 2, 0, false).is_err());
    }

    #[test]
    fn bundle_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelBundle>();
    }
}
