//! Shared training-status surface.
//!
//! The streaming trainer (the `reghd-train` crate) and the serving
//! front-end run in the same process but must not depend on each other in
//! the wrong direction: `reghd-train` depends on this crate for the
//! registry, so the status type the server renders lives *here*. The
//! trainer updates a [`TrainStatus`] through `Arc`-shared atomics as it
//! consumes samples; the server exposes the latest snapshot through the
//! `train-status` protocol command. All counters are monotone and
//! individually atomic — a reader may observe a momentarily inconsistent
//! combination (e.g. a drift counted before the matching checkpoint), which
//! is fine for an observability surface.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Live counters describing an attached streaming trainer.
///
/// Constructed by the trainer, shared with the server via
/// [`crate::server::ServerConfig::train_status`].
#[derive(Debug, Default)]
pub struct TrainStatus {
    samples: AtomicU64,
    drift_events: AtomicU64,
    last_drift_sample: AtomicU64, // sample index + 1; 0 = never
    checkpoints: AtomicU64,
    publications: AtomicU64,
    canary_failures: AtomicU64,
    store_publish_retries: AtomicU64,
    cluster_resets: AtomicU64,
    promotions: AtomicU64,
    shadow_active: AtomicBool,
    prequential_mse_bits: AtomicU64,
}

impl TrainStatus {
    /// Creates a zeroed status block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one consumed sample and the trainer's current prequential
    /// MSE (the EWMA of squared predict-then-train errors).
    pub fn record_sample(&self, prequential_mse: f64) {
        self.samples.fetch_add(1, Ordering::Relaxed);
        self.prequential_mse_bits
            .store(prequential_mse.to_bits(), Ordering::Relaxed);
    }

    /// Records a detected drift at `sample` (0-based sample index).
    pub fn record_drift(&self, sample: u64) {
        self.drift_events.fetch_add(1, Ordering::Relaxed);
        self.last_drift_sample.store(sample + 1, Ordering::Relaxed);
    }

    /// Records one checkpoint written to disk.
    pub fn record_checkpoint(&self) {
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one successful publication into the registry.
    pub fn record_publication(&self) {
        self.publications.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a publication refused by the canary replay.
    pub fn record_canary_failure(&self) {
        self.canary_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one retried store publication attempt (a transient store
    /// failure that was re-tried with backoff rather than surfaced).
    pub fn record_store_publish_retry(&self) {
        self.store_publish_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a drift response that reset a cluster/model pair.
    pub fn record_cluster_reset(&self) {
        self.cluster_resets.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a shadow model promoted over the primary.
    pub fn record_promotion(&self) {
        self.promotions.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks whether a shadow model is currently being trained.
    pub fn set_shadow_active(&self, active: bool) {
        self.shadow_active.store(active, Ordering::Relaxed);
    }

    /// Samples consumed so far.
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    /// Drift events detected so far.
    pub fn drift_events(&self) -> u64 {
        self.drift_events.load(Ordering::Relaxed)
    }

    /// Sample index of the most recent drift, if any.
    pub fn last_drift_sample(&self) -> Option<u64> {
        match self.last_drift_sample.load(Ordering::Relaxed) {
            0 => None,
            s => Some(s - 1),
        }
    }

    /// Checkpoints written so far.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints.load(Ordering::Relaxed)
    }

    /// Successful registry publications so far.
    pub fn publications(&self) -> u64 {
        self.publications.load(Ordering::Relaxed)
    }

    /// Publications refused by the canary replay so far.
    pub fn canary_failures(&self) -> u64 {
        self.canary_failures.load(Ordering::Relaxed)
    }

    /// Store publication attempts retried after transient failures.
    pub fn store_publish_retries(&self) -> u64 {
        self.store_publish_retries.load(Ordering::Relaxed)
    }

    /// Cluster resets performed in response to drift.
    pub fn cluster_resets(&self) -> u64 {
        self.cluster_resets.load(Ordering::Relaxed)
    }

    /// Shadow models promoted so far.
    pub fn promotions(&self) -> u64 {
        self.promotions.load(Ordering::Relaxed)
    }

    /// Whether a shadow model is currently training.
    pub fn shadow_active(&self) -> bool {
        self.shadow_active.load(Ordering::Relaxed)
    }

    /// The trainer's latest prequential MSE.
    pub fn prequential_mse(&self) -> f64 {
        f64::from_bits(self.prequential_mse_bits.load(Ordering::Relaxed))
    }

    /// Renders the status as the single `train-status` reply line.
    pub fn summary(&self) -> String {
        format!(
            "train samples={} preq_mse={:.6} drift_events={} last_drift={} \
             checkpoints={} publications={} canary_failures={} \
             store_publish_retries={} cluster_resets={} promotions={} \
             shadow={}",
            self.samples(),
            self.prequential_mse(),
            self.drift_events(),
            self.last_drift_sample()
                .map_or_else(|| "never".to_string(), |s| s.to_string()),
            self.checkpoints(),
            self.publications(),
            self.canary_failures(),
            self.store_publish_retries(),
            self.cluster_resets(),
            self.promotions(),
            u8::from(self.shadow_active()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render() {
        let s = TrainStatus::new();
        assert_eq!(s.last_drift_sample(), None);
        assert!(s.summary().contains("last_drift=never"));

        s.record_sample(0.25);
        s.record_sample(0.16);
        s.record_drift(1);
        s.record_checkpoint();
        s.record_publication();
        s.record_cluster_reset();
        s.set_shadow_active(true);

        assert_eq!(s.samples(), 2);
        assert_eq!(s.drift_events(), 1);
        assert_eq!(s.last_drift_sample(), Some(1));
        assert_eq!(s.checkpoints(), 1);
        assert_eq!(s.publications(), 1);
        assert_eq!(s.canary_failures(), 0);
        assert_eq!(s.cluster_resets(), 1);
        assert!(s.shadow_active());
        assert!((s.prequential_mse() - 0.16).abs() < 1e-12);

        let line = s.summary();
        assert!(line.starts_with("train samples=2"), "{line}");
        assert!(line.contains("drift_events=1"), "{line}");
        assert!(line.contains("last_drift=1"), "{line}");
        assert!(line.contains("shadow=1"), "{line}");
    }

    #[test]
    fn status_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TrainStatus>();
    }
}
