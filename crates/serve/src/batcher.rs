//! Micro-batching queue in front of the worker pool.
//!
//! Policy: when a worker is idle, pending rows are dispatched immediately
//! (fall-through — no batching tax on a lightly loaded server). When every
//! worker is busy, the dispatcher coalesces arrivals for up to
//! `max_wait` or until `max_batch` rows accumulate, amortising the
//! per-call overhead exactly when throughput matters.
//!
//! The queue is bounded: [`Batcher::enqueue`] refuses rows once
//! `queue_cap` is reached ([`EnqueueResult::Full`] → the server answers
//! `busy`) so a slow model sheds load instead of growing latency without
//! bound. Rows carry an optional deadline: the dispatcher sheds
//! already-expired rows at drain time (before they cost a batch slot),
//! orders dispatch most-urgent-first, and feeds every surviving row's
//! queue wait to the adaptive [`ShedController`] when one is attached.
//! On shutdown the queue drains gracefully: rows still queued get an
//! explicit [`WorkError::Draining`] reply rather than a dropped channel.

use crate::metrics::ModelMetrics;
use crate::registry::ServedModel;
use crate::shed::ShedController;
use crate::worker::{Batch, WorkError, WorkItem, WorkerPool};
use crate::{lock_unpoisoned, ServeError};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for the batcher.
#[derive(Debug, Clone)]
pub struct BatcherConfig {
    /// Largest number of rows coalesced into one model call.
    pub max_batch: usize,
    /// Longest time a row may wait for companions when all workers are busy.
    pub max_wait: Duration,
    /// Bound on queued rows; beyond it [`Batcher::enqueue`] sheds.
    pub queue_cap: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_wait: Duration::from_micros(500),
            queue_cap: 1024,
        }
    }
}

/// Why (or whether) [`Batcher::enqueue`] accepted a row. The two refusal
/// reasons demand different protocol replies: a full queue is overload
/// (`busy` — retry later), a stopping batcher is shutdown (`draining` —
/// this server is going away).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueResult {
    /// Row queued; the answer arrives on the item's reply channel.
    Accepted,
    /// Queue at capacity — the row was shed (counted via
    /// [`ModelMetrics::record_shed`]).
    Full,
    /// The batcher is draining for shutdown (counted via
    /// [`ModelMetrics::record_stopped`]).
    Stopping,
}

/// A queued row bound to the model version resolved at enqueue time.
struct Pending {
    model: Arc<ServedModel>,
    metrics: Arc<ModelMetrics>,
    item: WorkItem,
}

struct QueueState {
    items: VecDeque<Pending>,
    stop: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    cond: Condvar,
    cfg: BatcherConfig,
    pool: Arc<WorkerPool>,
    /// When present, every drained row's queue wait feeds the adaptive
    /// shed controller.
    shed: Option<Arc<ShedController>>,
}

/// Queue + dispatcher thread implementing the micro-batching policy.
pub struct Batcher {
    shared: Arc<Shared>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Batcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Batcher")
            .field("cfg", &self.shared.cfg)
            .finish_non_exhaustive()
    }
}

/// Groups drained rows by model identity (name + version, so rows pinned
/// to different versions around a hot swap never share a batch) and splits
/// each group into `max_batch`-sized chunks.
fn into_batches(drained: Vec<Pending>, max_batch: usize) -> Vec<Batch> {
    let mut groups: HashMap<(String, u64), Batch> = HashMap::new();
    let mut order: Vec<(String, u64)> = Vec::new();
    let mut out = Vec::new();
    for p in drained {
        let key = (p.model.meta.name.clone(), p.model.meta.version);
        let batch = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key.clone());
            Batch {
                model: p.model.clone(),
                metrics: p.metrics.clone(),
                items: Vec::new(),
            }
        });
        batch.items.push(p.item);
        if batch.items.len() >= max_batch {
            // The entry was just inserted/updated above, but a panic here
            // would take down the dispatcher thread and strand every queued
            // request — flush defensively instead of unwrapping.
            if let Some(full) = groups.remove(&key) {
                out.push(full);
                order.retain(|k| k != &key);
            }
        }
    }
    // Emit remaining partial groups in first-seen order for determinism.
    for key in order {
        if let Some(b) = groups.remove(&key) {
            out.push(b);
        }
    }
    out
}

fn dispatcher_loop(shared: &Shared) {
    loop {
        let (drained, stopping): (Vec<Pending>, bool) = {
            // All waits recover from poisoning: a worker/connection thread
            // that panicked while holding the queue lock must not silence
            // the dispatcher — the queue itself (a VecDeque of
            // self-contained items) stays structurally valid.
            let mut q = lock_unpoisoned(&shared.queue);
            // Sleep until there is work or we are asked to stop.
            while q.items.is_empty() && !q.stop {
                q = shared.cond.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
            if q.stop {
                // Graceful drain: batches already submitted to the pool
                // complete, but rows still queued are answered `Draining`
                // below instead of being dispatched.
                (q.items.drain(..).collect(), true)
            } else {
                // Coalesce only when it can pay off: all workers busy and
                // the window isn't already full. Idle workers get rows at
                // once. Loop on a fixed deadline: every arrival's
                // `notify_one` (and any spurious wakeup) ends a single
                // `wait_timeout`, so without the loop a saturated pool
                // would emit 1–2-row batches and the window would never
                // fill.
                let deadline = Instant::now() + shared.cfg.max_wait;
                while !shared.pool.has_idle_worker()
                    && q.items.len() < shared.cfg.max_batch
                    && !q.stop
                {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, _timeout) = shared
                        .cond
                        .wait_timeout(q, deadline - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    q = guard;
                }
                (q.items.drain(..).collect(), q.stop)
            }
        };
        if stopping {
            for p in drained {
                p.metrics.record_stopped();
                p.item.reply.send(Err(WorkError::Draining));
            }
            return;
        }
        if drained.is_empty() {
            continue;
        }
        // Shed already-expired rows before they cost a batch slot, and
        // feed every surviving row's queue wait to the shed controller —
        // the p95 of exactly these waits is the demote/promote signal.
        let now = Instant::now();
        let mut live: Vec<Pending> = Vec::with_capacity(drained.len());
        for p in drained {
            if p.item.is_expired(now) {
                p.metrics.record_expired();
                p.item.reply.send(Err(WorkError::Expired));
                continue;
            }
            if let Some(shed) = &shared.shed {
                shed.observe_wait(now.duration_since(p.item.enqueued_at));
            }
            live.push(p);
        }
        // Deadline-aware assembly: most-urgent rows first, so the batches
        // that reach the pool earliest are the ones with the least slack.
        // The sort is stable — rows without deadlines keep FIFO order.
        live.sort_by_key(|p| p.item.deadline.unwrap_or(now + Duration::from_secs(3600)));
        for batch in into_batches(live, shared.cfg.max_batch) {
            // `submit` blocks when the pool's channel is full; backpressure
            // then propagates to `enqueue` via the bounded queue above.
            if shared.pool.submit(batch).is_err() {
                return; // pool shut down underneath us
            }
        }
    }
}

impl Batcher {
    /// Starts the dispatcher thread over `pool`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Spawn`] if the dispatcher thread cannot be created.
    pub fn new(cfg: BatcherConfig, pool: Arc<WorkerPool>) -> Result<Self, ServeError> {
        Self::with_shed(cfg, pool, None)
    }

    /// Like [`Batcher::new`], but every drained row's queue wait also
    /// feeds `shed`, the adaptive degraded-tier controller.
    ///
    /// # Errors
    ///
    /// [`ServeError::Spawn`] if the dispatcher thread cannot be created.
    pub fn with_shed(
        cfg: BatcherConfig,
        pool: Arc<WorkerPool>,
        shed: Option<Arc<ShedController>>,
    ) -> Result<Self, ServeError> {
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                items: VecDeque::new(),
                stop: false,
            }),
            cond: Condvar::new(),
            cfg,
            pool,
            shed,
        });
        let dispatcher = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("reghd-batcher".to_string())
                .spawn(move || dispatcher_loop(&shared))
                .map_err(ServeError::Spawn)?
        };
        Ok(Self {
            shared,
            dispatcher: Mutex::new(Some(dispatcher)),
        })
    }

    /// Queues one row for `model`. The two refusal reasons are counted
    /// separately so load dashboards don't read a shutdown as overload: a
    /// full queue records a **shed** (answer `busy`), a stopping batcher
    /// records a **stop-time rejection** (answer `draining`,
    /// [`ModelMetrics::record_stopped`]).
    pub fn enqueue(
        &self,
        model: Arc<ServedModel>,
        metrics: Arc<ModelMetrics>,
        item: WorkItem,
    ) -> EnqueueResult {
        let mut q = lock_unpoisoned(&self.shared.queue);
        if q.stop {
            drop(q);
            metrics.record_stopped();
            return EnqueueResult::Stopping;
        }
        if q.items.len() >= self.shared.cfg.queue_cap {
            drop(q);
            metrics.record_shed();
            return EnqueueResult::Full;
        }
        q.items.push_back(Pending {
            model,
            metrics,
            item,
        });
        drop(q);
        self.shared.cond.notify_one();
        EnqueueResult::Accepted
    }

    /// Rows currently waiting for dispatch.
    pub fn depth(&self) -> usize {
        lock_unpoisoned(&self.shared.queue).items.len()
    }

    /// Stops accepting rows without joining the dispatcher: new enqueues
    /// are refused as [`EnqueueResult::Stopping`], and the dispatcher
    /// answers everything still queued with an explicit
    /// [`WorkError::Draining`] reply (batches already at the pool
    /// complete normally). The server calls this *before* joining its
    /// connection threads so waiting clients receive `draining` lines
    /// instead of dropped connections.
    pub fn begin_drain(&self) {
        lock_unpoisoned(&self.shared.queue).stop = true;
        self.shared.cond.notify_all();
    }

    /// [`Batcher::begin_drain`] plus joining the dispatcher thread.
    /// Called automatically on drop.
    pub fn shutdown(&self) {
        self.begin_drain();
        if let Some(h) = lock_unpoisoned(&self.dispatcher).take() {
            let _ = h.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle;
    use crate::registry::ModelRegistry;
    use datasets::Dataset;
    use std::sync::mpsc::sync_channel;
    use std::time::Instant;

    fn served(seed: u64) -> Arc<ServedModel> {
        let features: Vec<Vec<f32>> = (0..40).map(|i| vec![i as f32, (i * 2) as f32]).collect();
        let targets: Vec<f32> = features.iter().map(|r| r[0] + r[1]).collect();
        let ds = Dataset::new("toy", features, targets);
        let (b, _) = bundle::train(&ds, 128, 2, 3, seed, false).unwrap();
        let reg = ModelRegistry::new();
        reg.load_bytes("m", &b.to_bytes().unwrap()).unwrap();
        reg.get("m").unwrap()
    }

    fn item(row: Vec<f32>) -> (WorkItem, std::sync::mpsc::Receiver<Result<f32, WorkError>>) {
        let (tx, rx) = sync_channel(1);
        (
            WorkItem {
                row,
                enqueued_at: Instant::now(),
                deadline: None,
                reply: tx.into(),
            },
            rx,
        )
    }

    fn accepted(r: EnqueueResult) -> bool {
        r == EnqueueResult::Accepted
    }

    /// A batcher with no dispatcher thread: the queue's accept/shed logic
    /// can be exercised deterministically, with nothing draining it.
    fn undispatched(cfg: BatcherConfig) -> Batcher {
        let pool = Arc::new(WorkerPool::new(1, 1).unwrap());
        Batcher {
            shared: Arc::new(Shared {
                queue: Mutex::new(QueueState {
                    items: VecDeque::new(),
                    stop: false,
                }),
                cond: Condvar::new(),
                cfg,
                pool,
                shed: None,
            }),
            dispatcher: Mutex::new(None),
        }
    }

    #[test]
    fn enqueued_rows_get_answers() {
        let model = served(1);
        let metrics = Arc::new(ModelMetrics::default());
        let pool = Arc::new(WorkerPool::new(2, 8).unwrap());
        let batcher = Batcher::new(BatcherConfig::default(), pool).unwrap();
        let mut rxs = Vec::new();
        for i in 0..20 {
            let (it, rx) = item(vec![i as f32, (i + 1) as f32]);
            assert!(accepted(batcher.enqueue(
                model.clone(),
                metrics.clone(),
                it
            )));
            rxs.push(rx);
        }
        for rx in rxs {
            assert!(rx.recv_timeout(Duration::from_secs(5)).unwrap().is_ok());
        }
        assert_eq!(metrics.ok.load(std::sync::atomic::Ordering::Relaxed), 20);
    }

    #[test]
    fn full_queue_sheds() {
        let model = served(2);
        let metrics = Arc::new(ModelMetrics::default());
        // Pool with a dead-slow start: 1 worker, but we just make the queue
        // tiny so the third enqueue before dispatch can shed. Stop the
        // dispatcher first so nothing drains.
        let pool = Arc::new(WorkerPool::new(1, 1).unwrap());
        let batcher = Batcher::new(
            BatcherConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(1),
                queue_cap: 2,
            },
            pool,
        )
        .unwrap();
        // Freeze the dispatcher by taking the queue lock while we overfill.
        {
            let mut q = batcher.shared.queue.lock().unwrap();
            for i in 0..2 {
                let (tx, _rx) = sync_channel(1);
                q.items.push_back(Pending {
                    model: model.clone(),
                    metrics: metrics.clone(),
                    item: WorkItem {
                        row: vec![i as f32, 0.0],
                        enqueued_at: Instant::now(),
                        deadline: None,
                        reply: tx.into(),
                    },
                });
            }
        }
        let (it, _rx) = item(vec![9.0, 9.0]);
        assert_eq!(
            batcher.enqueue(model, metrics.clone(), it),
            EnqueueResult::Full
        );
        assert_eq!(metrics.shed.load(std::sync::atomic::Ordering::Relaxed), 1);
        batcher.shutdown();
    }

    #[test]
    fn shutdown_answers_every_queued_row_explicitly() {
        // Graceful drain: a row accepted before shutdown is either served
        // (it made it into a dispatched batch) or answered with an
        // explicit `Draining` — never silently dropped.
        let model = served(3);
        let metrics = Arc::new(ModelMetrics::default());
        let pool = Arc::new(WorkerPool::new(1, 8).unwrap());
        let batcher = Batcher::new(BatcherConfig::default(), pool).unwrap();
        let mut rxs = Vec::new();
        for i in 0..10 {
            let (it, rx) = item(vec![i as f32, i as f32]);
            assert!(accepted(batcher.enqueue(
                model.clone(),
                metrics.clone(),
                it
            )));
            rxs.push(rx);
        }
        batcher.shutdown();
        for rx in rxs {
            match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
                Ok(_) | Err(WorkError::Draining) => {}
                other => panic!("row must be served or told `draining`, got {other:?}"),
            }
        }
    }

    #[test]
    fn drain_replies_draining_to_rows_still_queued() {
        // Deterministic version of the drain contract: with no dispatcher
        // running, every queued row is still in the queue when drain
        // begins, so all of them must be answered `Draining` (and counted
        // as stop-time rejections, not sheds) once a dispatcher pass runs.
        let model = served(11);
        let metrics = Arc::new(ModelMetrics::default());
        let batcher = undispatched(BatcherConfig::default());
        let mut rxs = Vec::new();
        for i in 0..4 {
            let (it, rx) = item(vec![i as f32, 0.0]);
            assert!(accepted(batcher.enqueue(
                model.clone(),
                metrics.clone(),
                it
            )));
            rxs.push(rx);
        }
        batcher.begin_drain();
        dispatcher_loop(&batcher.shared); // returns immediately after the drain
        for rx in rxs {
            assert_eq!(rx.try_recv().unwrap(), Err(WorkError::Draining));
        }
        assert_eq!(
            metrics.stopped.load(std::sync::atomic::Ordering::Relaxed),
            4
        );
        assert_eq!(metrics.shed.load(std::sync::atomic::Ordering::Relaxed), 0);
    }

    #[test]
    fn expired_rows_are_shed_at_drain_not_dispatched() {
        // A row whose deadline passed while it waited in the queue is
        // answered `Expired` by the dispatcher without costing a batch
        // slot; rows with slack dispatch normally.
        let model = served(12);
        let metrics = Arc::new(ModelMetrics::default());
        let pool = Arc::new(WorkerPool::new(1, 4).unwrap());
        let batcher = Batcher::new(BatcherConfig::default(), pool).unwrap();
        let (tx, expired_rx) = sync_channel(1);
        // Freeze the dispatcher while we stage an already-expired row and
        // a live one behind it.
        let live_rx = {
            let mut q = batcher.shared.queue.lock().unwrap();
            q.items.push_back(Pending {
                model: model.clone(),
                metrics: metrics.clone(),
                item: WorkItem {
                    row: vec![1.0, 2.0],
                    enqueued_at: Instant::now(),
                    deadline: Some(Instant::now() - Duration::from_millis(1)),
                    reply: tx.into(),
                },
            });
            let (it, rx) = item(vec![3.0, 4.0]);
            q.items.push_back(Pending {
                model: model.clone(),
                metrics: metrics.clone(),
                item: it,
            });
            rx
        };
        batcher.shared.cond.notify_one();
        assert_eq!(
            expired_rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            Err(WorkError::Expired)
        );
        assert!(live_rx
            .recv_timeout(Duration::from_secs(5))
            .unwrap()
            .is_ok());
        assert_eq!(
            metrics.expired.load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        assert_eq!(metrics.ok.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn drained_rows_dispatch_most_urgent_deadline_first() {
        // Two rows for the same model with inverted arrival/deadline
        // order: the tighter deadline must come out first in the
        // assembled batches.
        let model = served(13);
        let metrics = Arc::new(ModelMetrics::default());
        let now = Instant::now();
        let mk = |ms: u64| {
            let (tx, _rx) = sync_channel(1);
            Pending {
                model: model.clone(),
                metrics: metrics.clone(),
                item: WorkItem {
                    row: vec![ms as f32, 0.0],
                    enqueued_at: now,
                    deadline: Some(now + Duration::from_millis(ms)),
                    reply: tx.into(),
                },
            }
        };
        let mut live = vec![mk(500), mk(20), mk(100)];
        live.sort_by_key(|p| p.item.deadline.unwrap_or(now + Duration::from_secs(3600)));
        let batches = into_batches(live, 2);
        // max_batch 2: the two most urgent rows share the first batch.
        let first: Vec<f32> = batches[0].items.iter().map(|i| i.row[0]).collect();
        assert_eq!(first, vec![20.0, 100.0]);
    }

    #[test]
    fn batches_respect_max_batch_and_version_grouping() {
        let features: Vec<Vec<f32>> = (0..40).map(|i| vec![i as f32, (i * 2) as f32]).collect();
        let targets: Vec<f32> = features.iter().map(|r| r[0] + r[1]).collect();
        let ds = Dataset::new("toy", features, targets);
        let reg = ModelRegistry::new();
        let (ba, _) = bundle::train(&ds, 128, 2, 3, 4, false).unwrap();
        let (bb, _) = bundle::train(&ds, 128, 2, 3, 5, false).unwrap();
        reg.load_bytes("a", &ba.to_bytes().unwrap()).unwrap();
        reg.load_bytes("b", &bb.to_bytes().unwrap()).unwrap();
        let a = reg.get("a").unwrap();
        let b = reg.get("b").unwrap();
        let metrics = Arc::new(ModelMetrics::default());
        let mut drained = Vec::new();
        for i in 0..5 {
            let (tx, _rx) = sync_channel(1);
            let model = if i % 2 == 0 { a.clone() } else { b.clone() };
            drained.push(Pending {
                model,
                metrics: metrics.clone(),
                item: WorkItem {
                    row: vec![i as f32, 0.0],
                    enqueued_at: Instant::now(),
                    deadline: None,
                    reply: tx.into(),
                },
            });
        }
        let batches = into_batches(drained, 2);
        let total: usize = batches.iter().map(|b| b.items.len()).sum();
        assert_eq!(total, 5, "no row may be lost in grouping");
        assert!(batches.iter().all(|b| b.items.len() <= 2));
        // 3 rows for "a" (split 2+1) and 2 for "b" → exactly 3 batches,
        // proving rows for different models never share a batch.
        assert_eq!(batches.len(), 3);
    }

    #[test]
    fn zero_max_wait_still_answers_everything() {
        // max_wait == 0 collapses the coalescing window entirely; the
        // dispatcher must spin through wait_timeout(0) without hanging or
        // busy-dropping rows.
        let model = served(6);
        let metrics = Arc::new(ModelMetrics::default());
        let pool = Arc::new(WorkerPool::new(1, 4).unwrap());
        let batcher = Batcher::new(
            BatcherConfig {
                max_batch: 8,
                max_wait: Duration::ZERO,
                queue_cap: 64,
            },
            pool,
        )
        .unwrap();
        let mut rxs = Vec::new();
        for i in 0..16 {
            let (it, rx) = item(vec![i as f32, i as f32]);
            assert!(accepted(batcher.enqueue(
                model.clone(),
                metrics.clone(),
                it
            )));
            rxs.push(rx);
        }
        for rx in rxs {
            assert!(rx.recv_timeout(Duration::from_secs(5)).unwrap().is_ok());
        }
    }

    #[test]
    fn queue_exactly_at_capacity_accepts_then_sheds() {
        // Boundary check on the cap: the row that *reaches* capacity is
        // accepted, the row that would *exceed* it is shed.
        let model = served(7);
        let metrics = Arc::new(ModelMetrics::default());
        let batcher = undispatched(BatcherConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            queue_cap: 3,
        });
        for i in 0..3 {
            let (it, _rx) = item(vec![i as f32, 0.0]);
            assert!(
                accepted(batcher.enqueue(model.clone(), metrics.clone(), it)),
                "row {i} is within capacity"
            );
        }
        assert_eq!(batcher.depth(), 3);
        let (it, _rx) = item(vec![99.0, 0.0]);
        assert_eq!(
            batcher.enqueue(model.clone(), metrics.clone(), it),
            EnqueueResult::Full
        );
        assert_eq!(metrics.shed.load(std::sync::atomic::Ordering::Relaxed), 1);
        // Shedding must not have evicted anything already accepted.
        assert_eq!(batcher.depth(), 3);
    }

    #[test]
    fn saturated_pool_coalesces_toward_max_batch() {
        // Regression test for the collapsed coalescing window: a single
        // `wait_timeout` call ended the window on every arrival's
        // `notify_one`, so a saturated pool got 1–2-row batches. With the
        // deadline loop, a slow 1-worker pool under a steady arrival stream
        // must see a mean batch size of at least `max_batch / 2`.
        let model = served(9);
        let metrics = Arc::new(ModelMetrics::default());
        let inj = Arc::new(crate::faults::FaultInjector::new(9));
        let pool = Arc::new(WorkerPool::with_injector(1, 1, inj.clone()).unwrap());
        inj.set_worker_delay(Duration::from_millis(10));
        let max_batch = 8usize;
        let batcher = Batcher::new(
            BatcherConfig {
                max_batch,
                max_wait: Duration::from_millis(30),
                queue_cap: 1024,
            },
            pool,
        )
        .unwrap();
        let mut rxs = Vec::new();
        for i in 0..48 {
            let (it, rx) = item(vec![i as f32, 0.0]);
            assert!(accepted(batcher.enqueue(
                model.clone(),
                metrics.clone(),
                it
            )));
            rxs.push(rx);
            // Steady trickle: rows arrive one by one while the worker is
            // pinned, exactly the notify-per-arrival pattern that broke the
            // single-wait window.
            std::thread::sleep(Duration::from_micros(500));
        }
        for rx in rxs {
            assert!(rx.recv_timeout(Duration::from_secs(20)).unwrap().is_ok());
        }
        let batches = metrics.batches.load(std::sync::atomic::Ordering::Relaxed);
        let rows = metrics
            .batched_rows
            .load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(rows, 48);
        let mean = rows as f64 / batches as f64;
        assert!(
            mean >= (max_batch / 2) as f64,
            "saturated pool should coalesce: mean batch {mean:.2} over {batches} batches"
        );
    }

    #[test]
    fn stop_time_rejection_is_not_counted_as_shed() {
        let model = served(10);
        let metrics = Arc::new(ModelMetrics::default());
        let batcher = undispatched(BatcherConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            queue_cap: 2,
        });
        // Full queue → shed (the overload signal).
        for i in 0..2 {
            let (it, _rx) = item(vec![i as f32, 0.0]);
            assert!(accepted(batcher.enqueue(
                model.clone(),
                metrics.clone(),
                it
            )));
        }
        let (it, _rx) = item(vec![9.0, 0.0]);
        assert_eq!(
            batcher.enqueue(model.clone(), metrics.clone(), it),
            EnqueueResult::Full
        );
        assert_eq!(metrics.shed.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(
            metrics.stopped.load(std::sync::atomic::Ordering::Relaxed),
            0
        );

        // Stopping batcher → rejection counted separately, never as shed.
        lock_unpoisoned(&batcher.shared.queue).stop = true;
        let (it, _rx) = item(vec![10.0, 0.0]);
        assert_eq!(
            batcher.enqueue(model, metrics.clone(), it),
            EnqueueResult::Stopping
        );
        assert_eq!(metrics.shed.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(
            metrics.stopped.load(std::sync::atomic::Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn shed_then_drain_preserves_fifo_and_reopens_queue() {
        let model = served(8);
        let metrics = Arc::new(ModelMetrics::default());
        let batcher = undispatched(BatcherConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(1),
            queue_cap: 3,
        });
        for i in 0..3 {
            let (it, _rx) = item(vec![i as f32, 0.0]);
            assert!(accepted(batcher.enqueue(
                model.clone(),
                metrics.clone(),
                it
            )));
        }
        let (it, _rx) = item(vec![99.0, 0.0]);
        assert_eq!(
            batcher.enqueue(model.clone(), metrics.clone(), it),
            EnqueueResult::Full
        );

        // Drain exactly as the dispatcher would and check the shed row
        // left no hole: survivors come out in arrival order.
        let drained: Vec<Pending> = lock_unpoisoned(&batcher.shared.queue)
            .items
            .drain(..)
            .collect();
        let order: Vec<f32> = drained.iter().map(|p| p.item.row[0]).collect();
        assert_eq!(order, vec![0.0, 1.0, 2.0]);
        let batches = into_batches(drained, 8);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].items.len(), 3);

        // After the drain the queue is open for business again.
        let (it, _rx) = item(vec![7.0, 0.0]);
        assert!(accepted(batcher.enqueue(model, metrics, it)));
        assert_eq!(batcher.depth(), 1);
    }
}
