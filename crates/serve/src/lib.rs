//! # reghd-serve — concurrent inference for trained RegHD models
//!
//! The serving subsystem: a [`registry::ModelRegistry`] of hot-swappable
//! named models loaded from `.rghd` bundles, a [`batcher::Batcher`] that
//! micro-batches incoming rows, a fixed [`worker::WorkerPool`] executing
//! batched predictions, a line-oriented TCP front-end
//! ([`server::serve`]), and lock-free [`metrics`].
//!
//! Everything is built on `std` (threads, channels, `TcpListener`) — no
//! external runtime. A trained [`bundle::ModelBundle`] is immutable while
//! served, so one copy of the learned state is shared by every worker
//! thread; hot swaps replace the `Arc` atomically and in-flight requests
//! finish on the version they resolved.
//!
//! ```no_run
//! use reghd_serve::registry::ModelRegistry;
//! use reghd_serve::server::{serve, ServerConfig};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(ModelRegistry::new());
//! registry.load("demo", "model.rghd").unwrap();
//! let handle = serve(ServerConfig::default(), registry).unwrap();
//! println!("serving on {}", handle.local_addr());
//! # handle.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod bundle;
pub mod faults;
pub mod metrics;
pub mod registry;
pub mod server;
pub mod shed;
pub mod status;
pub mod worker;

pub use batcher::{Batcher, BatcherConfig, EnqueueResult};
pub use bundle::{ModelBundle, SectionFrames};
pub use faults::FaultInjector;
pub use metrics::{LatencyHistogram, MetricsHub, ModelMetrics};
pub use registry::{
    ModelMeta, ModelRegistry, ModelResolver, ResolverHealth, ResolverPolicy, ServedModel,
    SweepReport,
};
pub use server::{serve, ServerConfig, ServerHandle};
pub use shed::{ShedConfig, ShedController};
pub use status::TrainStatus;
pub use worker::{Batch, CompletionGuard, ReplySink, WorkError, WorkItem, WorkerPool};

use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Locks a mutex, recovering from poisoning.
///
/// Every mutex in this crate guards state that stays structurally valid
/// even if a holder panicked mid-critical-section (atomic counters, maps of
/// `Arc`s, queues of self-contained items), so the right response to poison
/// is to keep serving rather than propagate the panic to every other
/// thread — a poisoned batcher lock must not take the whole server down.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-locks an `RwLock`, recovering from poisoning (see
/// [`lock_unpoisoned`] for why recovery is sound here).
pub(crate) fn read_unpoisoned<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks an `RwLock`, recovering from poisoning (see
/// [`lock_unpoisoned`]).
pub(crate) fn write_unpoisoned<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// Errors surfaced by the serving subsystem.
#[derive(Debug)]
pub enum ServeError {
    /// Filesystem or socket failure.
    Io(std::io::Error),
    /// A bundle failed to parse or validate (including `.rghd` v2
    /// checksum mismatches).
    Bundle(String),
    /// No model is loaded under the requested name.
    NotFound(String),
    /// A model is already loaded under the requested name.
    AlreadyLoaded(String),
    /// A reloaded bundle parsed but failed its canary replay; the
    /// previously served version was kept (automatic rollback).
    Canary(String),
    /// A background thread could not be spawned.
    Spawn(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::Bundle(msg) => write!(f, "bad bundle: {msg}"),
            Self::NotFound(name) => write!(f, "unknown model {name}"),
            Self::AlreadyLoaded(name) => write!(f, "model {name} already loaded"),
            Self::Canary(msg) => write!(f, "canary check failed: {msg}"),
            Self::Spawn(e) => write!(f, "cannot spawn thread: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelRegistry>();
        assert_send_sync::<ModelBundle>();
        assert_send_sync::<MetricsHub>();
        assert_send_sync::<WorkerPool>();
        assert_send_sync::<Batcher>();
        assert_send_sync::<ServerHandle>();
    }

    #[test]
    fn errors_render_with_context() {
        let e = ServeError::NotFound("m".to_string());
        assert_eq!(e.to_string(), "unknown model m");
        let e = ServeError::Bundle("bad magic".to_string());
        assert!(e.to_string().contains("bad magic"));
        let e = ServeError::Canary("row 0 drifted".to_string());
        assert!(e.to_string().contains("canary"), "{e}");
    }

    #[test]
    fn poisoned_locks_recover() {
        let m = std::sync::Arc::new(Mutex::new(7u32));
        let m2 = m.clone();
        // Poison the mutex by panicking while holding it.
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison");
        })
        .join();
        assert!(m.lock().is_err(), "mutex must actually be poisoned");
        assert_eq!(*lock_unpoisoned(&m), 7);

        let l = std::sync::Arc::new(RwLock::new(3u32));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write().unwrap();
            panic!("poison");
        })
        .join();
        assert_eq!(*read_unpoisoned(&l), 3);
        *write_unpoisoned(&l) = 4;
        assert_eq!(*read_unpoisoned(&l), 4);
    }
}
