//! # reghd-serve — concurrent inference for trained RegHD models
//!
//! The serving subsystem: a [`registry::ModelRegistry`] of hot-swappable
//! named models loaded from `.rghd` bundles, a [`batcher::Batcher`] that
//! micro-batches incoming rows, a fixed [`worker::WorkerPool`] executing
//! batched predictions, a line-oriented TCP front-end
//! ([`server::serve`]), and lock-free [`metrics`].
//!
//! Everything is built on `std` (threads, channels, `TcpListener`) — no
//! external runtime. A trained [`bundle::ModelBundle`] is immutable while
//! served, so one copy of the learned state is shared by every worker
//! thread; hot swaps replace the `Arc` atomically and in-flight requests
//! finish on the version they resolved.
//!
//! ```no_run
//! use reghd_serve::registry::ModelRegistry;
//! use reghd_serve::server::{serve, ServerConfig};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(ModelRegistry::new());
//! registry.load("demo", "model.rghd").unwrap();
//! let handle = serve(ServerConfig::default(), registry).unwrap();
//! println!("serving on {}", handle.local_addr());
//! # handle.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod bundle;
pub mod metrics;
pub mod registry;
pub mod server;
pub mod worker;

pub use batcher::{Batcher, BatcherConfig};
pub use bundle::ModelBundle;
pub use metrics::{LatencyHistogram, MetricsHub, ModelMetrics};
pub use registry::{ModelMeta, ModelRegistry, ServedModel};
pub use server::{serve, ServerConfig, ServerHandle};
pub use worker::{Batch, WorkItem, WorkerPool};

/// Errors surfaced by the serving subsystem.
#[derive(Debug)]
pub enum ServeError {
    /// Filesystem or socket failure.
    Io(std::io::Error),
    /// A bundle failed to parse or validate.
    Bundle(String),
    /// No model is loaded under the requested name.
    NotFound(String),
    /// A model is already loaded under the requested name.
    AlreadyLoaded(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::Bundle(msg) => write!(f, "bad bundle: {msg}"),
            Self::NotFound(name) => write!(f, "unknown model {name}"),
            Self::AlreadyLoaded(name) => write!(f, "model {name} already loaded"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelRegistry>();
        assert_send_sync::<ModelBundle>();
        assert_send_sync::<MetricsHub>();
        assert_send_sync::<WorkerPool>();
        assert_send_sync::<Batcher>();
        assert_send_sync::<ServerHandle>();
    }

    #[test]
    fn errors_render_with_context() {
        let e = ServeError::NotFound("m".to_string());
        assert_eq!(e.to_string(), "unknown model m");
        let e = ServeError::Bundle("bad magic".to_string());
        assert!(e.to_string().contains("bad magic"));
    }
}
