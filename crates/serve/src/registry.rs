//! Hot-swappable model registry with integrity checking.
//!
//! Models live behind `Arc` pointers inside an `RwLock<HashMap>`; a lookup
//! clones the `Arc` and releases the lock before any prediction work, and a
//! [`ModelRegistry::reload`] swaps the pointer under a brief write lock.
//! In-flight requests therefore keep predicting against the version they
//! resolved — a hot swap drops **zero** requests, it only changes what
//! later lookups observe (the `ArcSwap` pattern, built on `std` only).
//!
//! # Integrity
//!
//! Every load and reload must pass the bundle's **canary replay**
//! ([`crate::bundle::ModelBundle::run_canary`]) before the swap happens; a
//! reload whose canary fails returns [`ServeError::Canary`] and leaves the
//! previous version serving — automatic rollback by never switching.
//!
//! Each served entry also records a CRC32 of its in-memory learned state at
//! load time ([`ServedModel::state_crc`]). [`ModelRegistry::sweep`]
//! recomputes those checksums; an entry that no longer matches (silent
//! in-memory corruption, or a fault injected via
//! [`ModelRegistry::inject_model_faults`]) is flagged corrupt and, when a
//! distinct last-good version exists, atomically rolled back to it.

use crate::bundle::ModelBundle;
use crate::{lock_unpoisoned, read_unpoisoned, write_unpoisoned, ServeError};
use hdc::TrigMode;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Metadata describing one loaded model version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelMeta {
    /// Registry name the model is served under.
    pub name: String,
    /// Monotonic version, starting at 1 and bumped by every reload.
    pub version: u64,
    /// FNV-1a hash of the bundle bytes (hex) — identifies the artefact.
    pub hash: String,
    /// Size of the bundle in bytes.
    pub bytes: usize,
    /// Raw feature width a `predict` row must have.
    pub input_dim: usize,
    /// Hypervector dimensionality `D`.
    pub dim: usize,
    /// Number of cluster/model pairs `k`.
    pub models: usize,
    /// Cluster quantisation mode label.
    pub cluster_mode: &'static str,
    /// Prediction quantisation mode label.
    pub prediction_mode: &'static str,
    /// Number of canary reference rows the bundle carries (0 for v1).
    pub canary_rows: usize,
    /// Approximate resident memory of the decoded model in bytes
    /// ([`ModelBundle::approx_mem_bytes`]) — what the `list` protocol
    /// reports and what the store's LRU budget charges per hot entry.
    pub mem: usize,
}

/// Resolves model keys the in-process registry does not hold — the
/// attachment point for the `reghd-store` sharded per-user model store,
/// defined here so `serve` needs no dependency on the store crate.
///
/// [`ModelRegistry::get`] consults the local map first and falls through to
/// the attached resolver, so explicitly loaded models always shadow
/// store-backed ones of the same name.
pub trait ModelResolver: Send + Sync + std::fmt::Debug {
    /// Resolves a key to a served model.
    ///
    /// The three outcomes carry distinct retry semantics:
    /// * `Ok(Some(_))` — found;
    /// * `Ok(None)` — **authoritatively** unknown (or failed validation
    ///   with no last-good fallback): retrying cannot help;
    /// * `Err(_)` — transient infrastructure failure (I/O, injected store
    ///   fault): the registry retries with backoff and, on sustained
    ///   failure, opens a per-key circuit breaker
    ///   (see [`ResolverPolicy`]).
    fn resolve(&self, key: &str) -> Result<Option<Arc<ServedModel>>, String>;

    /// Metadata for the currently *hot* (decoded, cache-resident) models —
    /// a registry `list` must stay O(hot), not O(resident keys).
    fn hot_models(&self) -> Vec<ModelMeta>;

    /// One-line operational stats (hits, misses, evictions, resident
    /// bytes) appended to the `stats` protocol reply.
    fn stats_line(&self) -> String;
}

/// Retry and circuit-breaker knobs for store-backed cold loads (the
/// attached [`ModelResolver`]).
///
/// A transient resolver failure (`Err`) is retried up to `attempts` times
/// with exponential backoff starting at `backoff`. When
/// `breaker_threshold` consecutive *exhausted* resolves fail for one key,
/// that key's breaker opens: lookups short-circuit to a miss (no store
/// I/O, no backoff sleeps on the serving thread) until `breaker_cooldown`
/// elapses, after which the next lookup probes the store again
/// (half-open). Any successful resolve — including an authoritative
/// `Ok(None)` — closes the key's breaker and resets its failure count.
#[derive(Debug, Clone)]
pub struct ResolverPolicy {
    /// Total resolve attempts per lookup (clamped to at least 1).
    pub attempts: u32,
    /// Delay before the first retry; doubles per subsequent retry.
    pub backoff: Duration,
    /// Consecutive exhausted lookups that open a key's breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker short-circuits lookups for its key.
    pub breaker_cooldown: Duration,
}

impl Default for ResolverPolicy {
    fn default() -> Self {
        Self {
            attempts: 3,
            backoff: Duration::from_micros(500),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(2),
        }
    }
}

/// Point-in-time counters for the resolver retry/breaker layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolverHealth {
    /// Individual retry attempts made after a transient failure.
    pub retries: u64,
    /// Lookups that exhausted every attempt without an answer.
    pub failures: u64,
    /// Times a key's circuit breaker opened.
    pub breaker_trips: u64,
    /// Lookups short-circuited by an open breaker (no store I/O).
    pub short_circuits: u64,
    /// Keys whose breaker is currently open.
    pub open_breakers: usize,
}

/// Per-key breaker state (guarded by the registry's breaker mutex).
#[derive(Debug, Default)]
struct BreakerState {
    /// Consecutive exhausted lookups since the last success.
    consecutive: u32,
    /// While set, lookups short-circuit until this instant passes.
    open_until: Option<Instant>,
}

/// One immutable, shareable loaded model version.
#[derive(Debug)]
pub struct ServedModel {
    /// The deserialised bundle (model + scalers + canary rows).
    pub bundle: ModelBundle,
    /// Metadata snapshot taken at load time.
    pub meta: ModelMeta,
    /// CRC32 of the in-memory learned state recorded when the entry was
    /// built. [`ModelRegistry::sweep`] recomputes the state checksum and
    /// compares against this to detect silent corruption.
    pub state_crc: u32,
    /// Set once the sweep finds this entry's state diverged from
    /// [`ServedModel::state_crc`]. The server routes requests for a
    /// corrupt-flagged model through the degraded (binary) path.
    pub corrupt: AtomicBool,
}

impl ServedModel {
    /// Whether the sweep has flagged this entry as corrupted.
    pub fn is_corrupt(&self) -> bool {
        self.corrupt.load(Ordering::Relaxed)
    }
}

/// What one [`ModelRegistry::sweep`] pass found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepReport {
    /// Models whose state checksum was recomputed.
    pub checked: usize,
    /// Models whose state no longer matched their recorded checksum.
    pub corrupted: usize,
    /// Corrupted models that were rolled back to a distinct last-good
    /// version (the remainder stay flagged and serve degraded).
    pub rolled_back: usize,
}

/// One registry slot: the serving version plus the most recent version
/// known good at swap time, kept for sweep rollback.
#[derive(Debug)]
struct Slot {
    current: Arc<ServedModel>,
    last_good: Arc<ServedModel>,
}

/// Named collection of served models with atomic hot-swap semantics.
#[derive(Debug)]
pub struct ModelRegistry {
    inner: RwLock<HashMap<String, Slot>>,
    /// Optional fall-through resolver for keys the map does not hold (the
    /// model store). Swapped in once at startup; lookups clone the `Arc`
    /// and release the lock before resolving.
    resolver: RwLock<Option<Arc<dyn ModelResolver>>>,
    /// Retry/breaker knobs for resolver lookups.
    resolver_policy: RwLock<ResolverPolicy>,
    /// Per-key circuit breakers. Only keys with at least one exhausted
    /// lookup since their last success have an entry, so the map stays
    /// O(currently failing keys), not O(traffic).
    breakers: Mutex<HashMap<String, BreakerState>>,
    /// Retry attempts made after transient resolver failures.
    resolver_retries: AtomicU64,
    /// Lookups that exhausted every attempt.
    resolver_failures: AtomicU64,
    /// Times a key's breaker opened.
    breaker_trips: AtomicU64,
    /// Lookups short-circuited by an open breaker.
    breaker_short_circuits: AtomicU64,
    /// Thread knob applied to every bundle this registry loads or swaps in
    /// (`0` = available parallelism). Predictions are bit-identical at any
    /// setting ([`crate::bundle::ModelBundle::set_threads`]).
    default_threads: AtomicUsize,
    /// Trig-mode knob applied to every bundle this registry loads or swaps
    /// in, stored as [`TrigMode::as_u8`]. Unlike the thread knob, `Fast`
    /// changes results (within the documented error bound); canary replays
    /// always pin `Exact`, so integrity checks are unaffected.
    default_trig: AtomicU8,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self {
            inner: RwLock::new(HashMap::new()),
            resolver: RwLock::new(None),
            resolver_policy: RwLock::new(ResolverPolicy::default()),
            breakers: Mutex::new(HashMap::new()),
            resolver_retries: AtomicU64::new(0),
            resolver_failures: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            breaker_short_circuits: AtomicU64::new(0),
            default_threads: AtomicUsize::new(1),
            default_trig: AtomicU8::new(TrigMode::Exact.as_u8()),
        }
    }
}

/// 64-bit FNV-1a over the bundle bytes.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Parses bytes into a served entry and runs its canary replay. The entry
/// is returned unwrapped so callers can adjust metadata before sharing it.
fn build_entry(name: &str, version: u64, bytes: &[u8]) -> Result<ServedModel, ServeError> {
    let bundle = ModelBundle::from_bytes(bytes).map_err(ServeError::Bundle)?;
    bundle.run_canary().map_err(ServeError::Canary)?;
    let cfg = bundle.model().config();
    let meta = ModelMeta {
        name: name.to_string(),
        version,
        hash: format!("{:016x}", fnv1a(bytes)),
        bytes: bytes.len(),
        input_dim: bundle.num_features(),
        dim: cfg.dim,
        models: cfg.models,
        cluster_mode: cfg.cluster_mode.label(),
        prediction_mode: cfg.prediction_mode.label(),
        canary_rows: bundle.canary_len(),
        mem: bundle.approx_mem_bytes(),
    };
    let state_crc = bundle.state_checksum();
    Ok(ServedModel {
        bundle,
        meta,
        state_crc,
        corrupt: AtomicBool::new(false),
    })
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the thread knob applied to every loaded bundle (`0` = available
    /// parallelism, `1` = sequential; default `1`). Applies immediately to
    /// all models already in the registry and to every future
    /// load/reload/publish. Safe at any time: the parallel schedule is
    /// bit-identical to the sequential one, so in-flight requests and
    /// canary replays are unaffected.
    pub fn set_default_threads(&self, threads: usize) {
        self.default_threads.store(threads, Ordering::Relaxed);
        let map = read_unpoisoned(&self.inner);
        for slot in map.values() {
            slot.current.bundle.set_threads(threads);
            slot.last_good.bundle.set_threads(threads);
        }
    }

    /// The thread knob new loads inherit (see
    /// [`ModelRegistry::set_default_threads`]).
    pub fn default_threads(&self) -> usize {
        self.default_threads.load(Ordering::Relaxed)
    }

    /// Sets the trigonometry mode applied to every loaded bundle (default
    /// [`TrigMode::Exact`]). Applies immediately to all models already in
    /// the registry and to every future load/reload/publish. `Fast` trades
    /// a bounded per-component error
    /// ([`hdc::kernels::FAST_TRIG_MAX_ABS_ERROR`]) for throughput; canary
    /// replays force `Exact` regardless, so hot-swap integrity checks stay
    /// bit-exact.
    pub fn set_default_trig(&self, mode: TrigMode) {
        self.default_trig.store(mode.as_u8(), Ordering::Relaxed);
        let map = read_unpoisoned(&self.inner);
        for slot in map.values() {
            slot.current.bundle.set_trig_mode(mode);
            slot.last_good.bundle.set_trig_mode(mode);
        }
    }

    /// The trig mode new loads inherit (see
    /// [`ModelRegistry::set_default_trig`]).
    pub fn default_trig(&self) -> TrigMode {
        TrigMode::from_u8(self.default_trig.load(Ordering::Relaxed))
    }

    /// Loads a new model under `name` from raw bundle bytes. The bundle's
    /// canary rows are replayed before the model becomes visible.
    ///
    /// # Errors
    ///
    /// [`ServeError::AlreadyLoaded`] if the name is taken (use
    /// [`ModelRegistry::reload_bytes`] to swap), [`ServeError::Bundle`]
    /// if the bytes do not parse or fail a section checksum, or
    /// [`ServeError::Canary`] if the canary replay mismatches.
    pub fn load_bytes(&self, name: &str, bytes: &[u8]) -> Result<ModelMeta, ServeError> {
        let entry = build_entry(name, 1, bytes)?;
        entry.bundle.set_threads(self.default_threads());
        entry.bundle.set_trig_mode(self.default_trig());
        let entry = Arc::new(entry);
        let meta = entry.meta.clone();
        let mut map = write_unpoisoned(&self.inner);
        if map.contains_key(name) {
            return Err(ServeError::AlreadyLoaded(name.to_string()));
        }
        map.insert(
            name.to_string(),
            Slot {
                current: entry.clone(),
                last_good: entry,
            },
        );
        Ok(meta)
    }

    /// Loads a new model under `name` from a `.rghd` bundle file.
    ///
    /// # Errors
    ///
    /// See [`ModelRegistry::load_bytes`]; additionally [`ServeError::Io`]
    /// on filesystem failure.
    pub fn load(&self, name: &str, path: &str) -> Result<ModelMeta, ServeError> {
        let bytes = std::fs::read(path)?;
        self.load_bytes(name, &bytes)
    }

    /// Hot-swaps the model under `name` with new bundle bytes. The swap is
    /// atomic: lookups before it complete against the old version, lookups
    /// after it observe the new one; no request is dropped. The new bundle
    /// is parsed, checksum-verified, and canary-replayed **before** the
    /// write lock is taken, so a corrupt or drifted artefact leaves the
    /// running version untouched — rollback by never switching.
    ///
    /// # Errors
    ///
    /// [`ServeError::NotFound`] when nothing is loaded under `name`,
    /// [`ServeError::Bundle`] when the bytes do not parse or fail a
    /// section checksum, [`ServeError::Canary`] when the staged bundle's
    /// canary replay mismatches (the old version keeps serving).
    pub fn reload_bytes(&self, name: &str, bytes: &[u8]) -> Result<ModelMeta, ServeError> {
        // Parse outside the lock (it deserialises megabytes of weights).
        let mut entry = build_entry(name, 0, bytes)?;
        entry.bundle.set_threads(self.default_threads());
        entry.bundle.set_trig_mode(self.default_trig());
        let mut map = write_unpoisoned(&self.inner);
        let slot = map
            .get_mut(name)
            .ok_or_else(|| ServeError::NotFound(name.to_string()))?;
        entry.meta.version = slot.current.meta.version + 1;
        let meta = entry.meta.clone();
        let shared = Arc::new(entry);
        slot.current = shared.clone();
        slot.last_good = shared;
        Ok(meta)
    }

    /// Publishes bundle bytes under `name`, creating the entry when absent
    /// and hot-swapping it when present — the streaming trainer's upsert
    /// path (it cannot know whether an operator already loaded the name).
    /// Exactly like [`ModelRegistry::load_bytes`]/[`ModelRegistry::reload_bytes`],
    /// the bundle must pass checksum verification and its canary replay
    /// **before** the swap; a failing artefact leaves the registry
    /// untouched.
    ///
    /// # Errors
    ///
    /// [`ServeError::Bundle`] when the bytes do not parse or fail a
    /// section checksum, [`ServeError::Canary`] when the canary replay
    /// mismatches.
    pub fn publish_bytes(&self, name: &str, bytes: &[u8]) -> Result<ModelMeta, ServeError> {
        let mut entry = build_entry(name, 1, bytes)?;
        entry.bundle.set_threads(self.default_threads());
        entry.bundle.set_trig_mode(self.default_trig());
        let mut map = write_unpoisoned(&self.inner);
        if let Some(slot) = map.get_mut(name) {
            entry.meta.version = slot.current.meta.version + 1;
            let meta = entry.meta.clone();
            let shared = Arc::new(entry);
            slot.current = shared.clone();
            slot.last_good = shared;
            return Ok(meta);
        }
        let meta = entry.meta.clone();
        let shared = Arc::new(entry);
        map.insert(
            name.to_string(),
            Slot {
                current: shared.clone(),
                last_good: shared,
            },
        );
        Ok(meta)
    }

    /// Hot-swaps the model under `name` from a `.rghd` bundle file. See
    /// [`ModelRegistry::reload_bytes`].
    ///
    /// # Errors
    ///
    /// See [`ModelRegistry::reload_bytes`]; additionally
    /// [`ServeError::Io`] on filesystem failure.
    pub fn reload(&self, name: &str, path: &str) -> Result<ModelMeta, ServeError> {
        let bytes = std::fs::read(path)?;
        self.reload_bytes(name, &bytes)
    }

    /// Removes the model under `name`. In-flight requests holding the Arc
    /// finish normally; the weights are freed when the last holder drops.
    ///
    /// # Errors
    ///
    /// [`ServeError::NotFound`] when nothing is loaded under `name`.
    pub fn unload(&self, name: &str) -> Result<ModelMeta, ServeError> {
        let mut map = write_unpoisoned(&self.inner);
        map.remove(name)
            .map(|s| s.current.meta.clone())
            .ok_or_else(|| ServeError::NotFound(name.to_string()))
    }

    /// Attaches a fall-through resolver (the model store) consulted by
    /// [`ModelRegistry::get`] and [`ModelRegistry::list`] for keys the
    /// in-process map does not hold. Replaces any previous resolver.
    pub fn attach_resolver(&self, resolver: Arc<dyn ModelResolver>) {
        *write_unpoisoned(&self.resolver) = Some(resolver);
    }

    /// The attached resolver's stats line, if one is attached.
    pub fn resolver_stats(&self) -> Option<String> {
        let resolver = read_unpoisoned(&self.resolver).clone();
        resolver.map(|r| r.stats_line())
    }

    /// Replaces the retry/breaker knobs applied to resolver lookups.
    /// Existing breaker state is kept; only future decisions use the new
    /// policy.
    pub fn set_resolver_policy(&self, policy: ResolverPolicy) {
        *write_unpoisoned(&self.resolver_policy) = policy;
    }

    /// Counters for the resolver retry/breaker layer.
    pub fn resolver_health(&self) -> ResolverHealth {
        let now = Instant::now();
        let open_breakers = lock_unpoisoned(&self.breakers)
            .values()
            .filter(|b| b.open_until.is_some_and(|t| now < t))
            .count();
        ResolverHealth {
            retries: self.resolver_retries.load(Ordering::Relaxed),
            failures: self.resolver_failures.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            short_circuits: self.breaker_short_circuits.load(Ordering::Relaxed),
            open_breakers,
        }
    }

    /// Resolves `name` to its current version. The returned `Arc` pins
    /// that version for the caller's lifetime regardless of later swaps.
    /// Names absent from the in-process map fall through to the attached
    /// resolver (the model store), so explicitly loaded models shadow
    /// store-backed ones. Transient resolver failures are retried per the
    /// registry's [`ResolverPolicy`]; a key whose lookups keep failing has
    /// its circuit breaker opened and resolves as a fast miss until the
    /// cooldown passes.
    pub fn get(&self, name: &str) -> Option<Arc<ServedModel>> {
        if let Some(found) = read_unpoisoned(&self.inner)
            .get(name)
            .map(|s| s.current.clone())
        {
            return Some(found);
        }
        let resolver = read_unpoisoned(&self.resolver).clone()?;
        self.resolve_with_retry(&*resolver, name)
    }

    /// The retry + circuit-breaker wrapper around one resolver lookup.
    fn resolve_with_retry(
        &self,
        resolver: &dyn ModelResolver,
        key: &str,
    ) -> Option<Arc<ServedModel>> {
        let policy = read_unpoisoned(&self.resolver_policy).clone();
        {
            let mut breakers = lock_unpoisoned(&self.breakers);
            if let Some(state) = breakers.get_mut(key) {
                if let Some(until) = state.open_until {
                    if Instant::now() < until {
                        drop(breakers);
                        self.breaker_short_circuits.fetch_add(1, Ordering::Relaxed);
                        return None;
                    }
                    // Cooldown elapsed: half-open — let this lookup probe
                    // the store. A failure re-trips immediately (the
                    // consecutive count is already at threshold's worth of
                    // history), a success closes the breaker.
                    state.open_until = None;
                }
            }
        }
        let mut delay = policy.backoff;
        for attempt in 0..policy.attempts.max(1) {
            if attempt > 0 {
                self.resolver_retries.fetch_add(1, Ordering::Relaxed);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                delay = delay.checked_mul(2).unwrap_or(delay);
            }
            if let Ok(found) = resolver.resolve(key) {
                // Success — even an authoritative miss proves the store is
                // answering; close the key's breaker.
                lock_unpoisoned(&self.breakers).remove(key);
                return found;
            }
        }
        self.resolver_failures.fetch_add(1, Ordering::Relaxed);
        let mut breakers = lock_unpoisoned(&self.breakers);
        let state = breakers.entry(key.to_string()).or_default();
        state.consecutive += 1;
        if state.consecutive >= policy.breaker_threshold.max(1) {
            state.open_until = Some(Instant::now() + policy.breaker_cooldown);
            drop(breakers);
            self.breaker_trips.fetch_add(1, Ordering::Relaxed);
        }
        None
    }

    /// Metadata for every loaded model — plus, when a resolver is
    /// attached, its currently hot models (in-process entries shadow
    /// same-named store entries) — in stable name order.
    pub fn list(&self) -> Vec<ModelMeta> {
        let mut metas: Vec<ModelMeta> = {
            let map = read_unpoisoned(&self.inner);
            map.values().map(|s| s.current.meta.clone()).collect()
        };
        let resolver = read_unpoisoned(&self.resolver).clone();
        if let Some(r) = resolver {
            let local: std::collections::HashSet<String> =
                metas.iter().map(|m| m.name.clone()).collect();
            metas.extend(
                r.hot_models()
                    .into_iter()
                    .filter(|m| !local.contains(&m.name)),
            );
        }
        metas.sort_by(|a, b| a.name.cmp(&b.name));
        metas
    }

    /// Number of loaded models.
    pub fn len(&self) -> usize {
        read_unpoisoned(&self.inner).len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        read_unpoisoned(&self.inner).is_empty()
    }

    /// Recomputes every served model's state checksum against the value
    /// recorded at load time. A mismatching entry is flagged corrupt and,
    /// when its slot holds a distinct last-good version, rolled back to it
    /// atomically (in-flight requests on the corrupted Arc finish, then it
    /// drops). The server runs this periodically; the `sweep` protocol
    /// command runs it on demand.
    pub fn sweep(&self) -> SweepReport {
        let mut report = SweepReport::default();
        let mut map = write_unpoisoned(&self.inner);
        for slot in map.values_mut() {
            report.checked += 1;
            if slot.current.bundle.state_checksum() == slot.current.state_crc {
                continue;
            }
            report.corrupted += 1;
            slot.current.corrupt.store(true, Ordering::Relaxed);
            if !Arc::ptr_eq(&slot.current, &slot.last_good) {
                slot.current = slot.last_good.clone();
                report.rolled_back += 1;
            }
        }
        report
    }

    /// Swaps the model under `name` for a copy whose hypervector state has
    /// random sign flips at `rate` (seeded) — emulating silent memory
    /// corruption of served weights, the paper's §3 component-fault model.
    /// The entry keeps the **clean** recorded checksum and the slot keeps
    /// its last-good version, so a subsequent [`ModelRegistry::sweep`]
    /// detects the divergence and rolls back. Returns the number of
    /// flipped components.
    ///
    /// # Errors
    ///
    /// [`ServeError::NotFound`] when nothing is loaded under `name`.
    pub fn inject_model_faults(
        &self,
        name: &str,
        rate: f64,
        seed: u64,
    ) -> Result<usize, ServeError> {
        let mut map = write_unpoisoned(&self.inner);
        let slot = map
            .get_mut(name)
            .ok_or_else(|| ServeError::NotFound(name.to_string()))?;
        let (faulty, flips) = slot.current.bundle.with_model_faults(rate, seed);
        slot.current = Arc::new(ServedModel {
            bundle: faulty,
            meta: slot.current.meta.clone(),
            // Deliberately the pre-fault checksum: corruption is silent
            // until a sweep recomputes the state hash.
            state_crc: slot.current.state_crc,
            corrupt: AtomicBool::new(false),
        });
        Ok(flips)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle;
    use datasets::Dataset;

    fn toy_dataset() -> Dataset {
        let features: Vec<Vec<f32>> = (0..40).map(|i| vec![i as f32, (i * 2) as f32]).collect();
        let targets: Vec<f32> = features.iter().map(|r| r[0] + r[1]).collect();
        Dataset::new("toy", features, targets)
    }

    fn toy_bundle(seed: u64) -> bundle::ModelBundle {
        let (b, _) = bundle::train(&toy_dataset(), 128, 2, 3, seed, false).unwrap();
        b
    }

    fn toy_bytes(seed: u64) -> Vec<u8> {
        toy_bundle(seed).to_bytes().unwrap()
    }

    #[test]
    fn load_get_list_unload() {
        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        let meta = reg.load_bytes("a", &toy_bytes(1)).unwrap();
        assert_eq!(meta.version, 1);
        assert_eq!(meta.input_dim, 2);
        assert_eq!(meta.dim, 128);
        assert_eq!(meta.models, 2);
        assert_eq!(meta.hash.len(), 16);
        assert!(meta.canary_rows > 0);
        assert!(reg.get("a").is_some());
        assert!(reg.get("b").is_none());
        assert_eq!(reg.list().len(), 1);
        assert_eq!(reg.unload("a").unwrap().name, "a");
        assert!(matches!(reg.unload("a"), Err(ServeError::NotFound(_))));
    }

    #[test]
    fn duplicate_load_rejected() {
        let reg = ModelRegistry::new();
        let bytes = toy_bytes(2);
        reg.load_bytes("m", &bytes).unwrap();
        assert!(matches!(
            reg.load_bytes("m", &bytes),
            Err(ServeError::AlreadyLoaded(_))
        ));
    }

    #[test]
    fn reload_bumps_version_and_preserves_in_flight_arc() {
        let reg = ModelRegistry::new();
        reg.load_bytes("m", &toy_bytes(3)).unwrap();
        let pinned = reg.get("m").unwrap();
        let meta = reg.reload_bytes("m", &toy_bytes(4)).unwrap();
        assert_eq!(meta.version, 2);
        // The pinned Arc still serves the old version.
        assert_eq!(pinned.meta.version, 1);
        assert_eq!(reg.get("m").unwrap().meta.version, 2);
        // Different bytes → different hash.
        assert_ne!(pinned.meta.hash, meta.hash);
    }

    #[test]
    fn publish_upserts_and_bumps_versions() {
        let reg = ModelRegistry::new();
        // First publish creates the entry …
        let meta = reg.publish_bytes("m", &toy_bytes(30)).unwrap();
        assert_eq!(meta.version, 1);
        // … later publishes hot-swap it, bumping the version.
        let meta = reg.publish_bytes("m", &toy_bytes(31)).unwrap();
        assert_eq!(meta.version, 2);
        assert_eq!(reg.get("m").unwrap().meta.version, 2);
        // A corrupt publish leaves the serving version untouched.
        assert!(matches!(
            reg.publish_bytes("m", b"garbage"),
            Err(ServeError::Bundle(_))
        ));
        assert_eq!(reg.get("m").unwrap().meta.version, 2);
    }

    #[test]
    fn list_is_sorted_by_name() {
        let reg = ModelRegistry::new();
        for name in ["zeta", "alpha", "mid"] {
            reg.publish_bytes(name, &toy_bytes(33)).unwrap();
        }
        let names: Vec<String> = reg.list().into_iter().map(|m| m.name).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
    }

    #[test]
    fn reload_of_missing_name_fails() {
        let reg = ModelRegistry::new();
        assert!(matches!(
            reg.reload_bytes("ghost", &toy_bytes(5)),
            Err(ServeError::NotFound(_))
        ));
    }

    #[test]
    fn corrupt_reload_leaves_old_version_running() {
        let reg = ModelRegistry::new();
        reg.load_bytes("m", &toy_bytes(6)).unwrap();
        assert!(matches!(
            reg.reload_bytes("m", b"garbage"),
            Err(ServeError::Bundle(_))
        ));
        assert_eq!(reg.get("m").unwrap().meta.version, 1);
    }

    #[test]
    fn checksum_corrupted_reload_leaves_old_version_running() {
        let reg = ModelRegistry::new();
        reg.load_bytes("m", &toy_bytes(6)).unwrap();
        let mut bad = toy_bytes(7);
        let idx = bad.len() - 60;
        bad[idx] ^= 0x10;
        let err = reg.reload_bytes("m", &bad).unwrap_err();
        assert!(matches!(err, ServeError::Bundle(_)), "{err}");
        assert!(err.to_string().contains("checksum"), "{err}");
        assert_eq!(reg.get("m").unwrap().meta.version, 1);
    }

    #[test]
    fn canary_failing_reload_is_rolled_back() {
        let reg = ModelRegistry::new();
        reg.load_bytes("m", &toy_bytes(8)).unwrap();
        let before = reg.get("m").unwrap();

        // Craft a bundle whose checksums are valid but whose recorded
        // canary predictions do not match its own model.
        let b = toy_bundle(9);
        let rows = vec![vec![1.0_f32, 2.0], vec![3.0, 4.0]];
        let mut preds = b.predict(&rows).unwrap();
        preds[1] += 0.5;
        let drifted = b.with_canary(rows, preds).unwrap().to_bytes().unwrap();

        let err = reg.reload_bytes("m", &drifted).unwrap_err();
        assert!(matches!(err, ServeError::Canary(_)), "{err}");
        // Old version untouched — same Arc, same predictions.
        let after = reg.get("m").unwrap();
        assert!(Arc::ptr_eq(&before, &after));
        assert_eq!(after.meta.version, 1);
    }

    #[test]
    fn canary_failing_initial_load_is_refused() {
        let b = toy_bundle(10);
        let rows = vec![vec![0.0_f32, 0.0]];
        let preds = vec![b.predict(&rows).unwrap()[0] + 1.0];
        let bad = b.with_canary(rows, preds).unwrap().to_bytes().unwrap();
        let reg = ModelRegistry::new();
        assert!(matches!(
            reg.load_bytes("m", &bad),
            Err(ServeError::Canary(_))
        ));
        assert!(reg.is_empty());
    }

    #[test]
    fn sweep_on_clean_registry_reports_zero() {
        let reg = ModelRegistry::new();
        reg.load_bytes("a", &toy_bytes(11)).unwrap();
        reg.load_bytes("b", &toy_bytes(12)).unwrap();
        let report = reg.sweep();
        assert_eq!(
            report,
            SweepReport {
                checked: 2,
                corrupted: 0,
                rolled_back: 0
            }
        );
    }

    #[test]
    fn injected_faults_are_swept_and_rolled_back_bit_exact() {
        let reg = ModelRegistry::new();
        reg.load_bytes("m", &toy_bytes(13)).unwrap();
        let probe = vec![vec![5.0_f32, 10.0], vec![20.0, 40.0]];
        let clean = reg.get("m").unwrap();
        let clean_preds = clean.bundle.predict(&probe).unwrap();

        let flips = reg.inject_model_faults("m", 0.2, 42).unwrap();
        assert!(flips > 0);
        // Corruption is silent until a sweep: the swapped entry reports
        // the clean checksum and no corrupt flag.
        let faulty = reg.get("m").unwrap();
        assert!(!faulty.is_corrupt());
        assert_ne!(
            faulty.bundle.predict(&probe).unwrap(),
            clean_preds,
            "fault injection should perturb predictions"
        );

        let report = reg.sweep();
        assert_eq!(report.checked, 1);
        assert_eq!(report.corrupted, 1);
        assert_eq!(report.rolled_back, 1);

        // Post-rollback predictions match the pre-fault model bit-exactly.
        let restored = reg.get("m").unwrap();
        assert!(Arc::ptr_eq(&restored, &clean));
        let restored_preds = restored.bundle.predict(&probe).unwrap();
        for (a, b) in clean_preds.iter().zip(&restored_preds) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // A second sweep finds nothing.
        assert_eq!(reg.sweep().corrupted, 0);
    }

    #[test]
    fn inject_on_missing_name_fails() {
        let reg = ModelRegistry::new();
        assert!(matches!(
            reg.inject_model_faults("ghost", 0.1, 1),
            Err(ServeError::NotFound(_))
        ));
    }

    #[test]
    fn default_threads_apply_to_loaded_and_future_models() {
        let reg = ModelRegistry::new();
        reg.load_bytes("a", &toy_bytes(40)).unwrap();
        assert_eq!(reg.get("a").unwrap().bundle.model().threads(), 1);
        // Applies retroactively to already-loaded models …
        reg.set_default_threads(4);
        assert_eq!(reg.default_threads(), 4);
        assert_eq!(reg.get("a").unwrap().bundle.model().threads(), 4);
        // … and is inherited by later loads and swaps.
        reg.publish_bytes("b", &toy_bytes(41)).unwrap();
        assert_eq!(reg.get("b").unwrap().bundle.model().threads(), 4);
        reg.reload_bytes("a", &toy_bytes(42)).unwrap();
        assert_eq!(reg.get("a").unwrap().bundle.model().threads(), 4);
    }

    #[test]
    fn default_trig_applies_to_loaded_and_future_models() {
        let reg = ModelRegistry::new();
        reg.load_bytes("a", &toy_bytes(50)).unwrap();
        assert_eq!(reg.get("a").unwrap().bundle.trig_mode(), TrigMode::Exact);
        // Applies retroactively to already-loaded models …
        reg.set_default_trig(TrigMode::Fast);
        assert_eq!(reg.default_trig(), TrigMode::Fast);
        assert_eq!(reg.get("a").unwrap().bundle.trig_mode(), TrigMode::Fast);
        // … and is inherited by later loads and swaps. Crucially, those
        // loads still pass their canary replay: the replay pins Exact
        // internally, so Fast mode never trips the integrity gate.
        reg.publish_bytes("b", &toy_bytes(51)).unwrap();
        assert_eq!(reg.get("b").unwrap().bundle.trig_mode(), TrigMode::Fast);
        reg.reload_bytes("a", &toy_bytes(52)).unwrap();
        assert_eq!(reg.get("a").unwrap().bundle.trig_mode(), TrigMode::Fast);
        // A sweep over fast-mode models is clean — the state checksum
        // covers learned weights, not the runtime trig knob.
        assert_eq!(reg.sweep().corrupted, 0);
    }

    /// Minimal resolver serving one fixed entry — stands in for the model
    /// store in fall-through tests.
    #[derive(Debug)]
    struct FixedResolver {
        entry: Arc<ServedModel>,
    }

    impl ModelResolver for FixedResolver {
        fn resolve(&self, key: &str) -> Result<Option<Arc<ServedModel>>, String> {
            Ok((key == self.entry.meta.name).then(|| self.entry.clone()))
        }

        fn hot_models(&self) -> Vec<ModelMeta> {
            vec![self.entry.meta.clone()]
        }

        fn stats_line(&self) -> String {
            "store shards=1".to_string()
        }
    }

    /// Resolver that fails transiently `failures` times per key before
    /// serving — stands in for a store with flaky disks.
    #[derive(Debug)]
    struct FlakyResolver {
        entry: Arc<ServedModel>,
        failures: AtomicUsize,
        calls: AtomicUsize,
    }

    impl ModelResolver for FlakyResolver {
        fn resolve(&self, key: &str) -> Result<Option<Arc<ServedModel>>, String> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            let left = self.failures.load(Ordering::Relaxed);
            if left > 0 {
                self.failures.store(left - 1, Ordering::Relaxed);
                return Err("injected: disk on fire".to_string());
            }
            Ok((key == self.entry.meta.name).then(|| self.entry.clone()))
        }

        fn hot_models(&self) -> Vec<ModelMeta> {
            Vec::new()
        }

        fn stats_line(&self) -> String {
            "store flaky".to_string()
        }
    }

    /// A zero-sleep policy so breaker tests never stall the suite.
    fn fast_policy(attempts: u32, threshold: u32, cooldown: Duration) -> ResolverPolicy {
        ResolverPolicy {
            attempts,
            backoff: Duration::ZERO,
            breaker_threshold: threshold,
            breaker_cooldown: cooldown,
        }
    }

    fn served_entry(name: &str, seed: u64) -> Arc<ServedModel> {
        let bundle = toy_bundle(seed);
        let bytes = bundle.to_bytes().unwrap();
        let cfg = bundle.model().config();
        let meta = ModelMeta {
            name: name.to_string(),
            version: 7,
            hash: format!("{:016x}", fnv1a(&bytes)),
            bytes: bytes.len(),
            input_dim: bundle.num_features(),
            dim: cfg.dim,
            models: cfg.models,
            cluster_mode: cfg.cluster_mode.label(),
            prediction_mode: cfg.prediction_mode.label(),
            canary_rows: bundle.canary_len(),
            mem: bundle.approx_mem_bytes(),
        };
        let state_crc = bundle.state_checksum();
        Arc::new(ServedModel {
            bundle,
            meta,
            state_crc,
            corrupt: AtomicBool::new(false),
        })
    }

    #[test]
    fn resolver_backs_unknown_keys_and_is_shadowed_by_local_loads() {
        let reg = ModelRegistry::new();
        reg.load_bytes("local", &toy_bytes(60)).unwrap();
        assert!(reg.get("user-42").is_none());
        assert!(reg.resolver_stats().is_none());

        let entry = served_entry("user-42", 61);
        reg.attach_resolver(Arc::new(FixedResolver {
            entry: entry.clone(),
        }));
        // Unknown key falls through to the resolver …
        let got = reg.get("user-42").unwrap();
        assert!(Arc::ptr_eq(&got, &entry));
        // … while locally loaded names never do.
        assert_eq!(reg.get("local").unwrap().meta.version, 1);
        assert!(reg.get("ghost").is_none());
        assert_eq!(reg.resolver_stats().unwrap(), "store shards=1");

        // list merges hot store models in stable name order.
        let names: Vec<String> = reg.list().into_iter().map(|m| m.name).collect();
        assert_eq!(names, ["local", "user-42"]);
    }

    #[test]
    fn local_name_shadows_same_named_resolver_entry_in_list() {
        let reg = ModelRegistry::new();
        reg.load_bytes("m", &toy_bytes(62)).unwrap();
        reg.attach_resolver(Arc::new(FixedResolver {
            entry: served_entry("m", 63),
        }));
        let metas = reg.list();
        assert_eq!(metas.len(), 1);
        // The local entry (version 1) wins over the store's version 7.
        assert_eq!(metas[0].version, 1);
        assert_eq!(reg.get("m").unwrap().meta.version, 1);
    }

    #[test]
    fn transient_resolver_failures_are_retried_within_one_lookup() {
        let reg = ModelRegistry::new();
        reg.set_resolver_policy(fast_policy(3, 3, Duration::from_secs(60)));
        let entry = served_entry("user-1", 70);
        let flaky = Arc::new(FlakyResolver {
            entry: entry.clone(),
            failures: AtomicUsize::new(2),
            calls: AtomicUsize::new(0),
        });
        reg.attach_resolver(flaky.clone());
        // Two transient failures, then success — all inside one get().
        let got = reg.get("user-1").unwrap();
        assert!(Arc::ptr_eq(&got, &entry));
        assert_eq!(flaky.calls.load(Ordering::Relaxed), 3);
        let health = reg.resolver_health();
        assert_eq!(health.retries, 2);
        assert_eq!(health.failures, 0);
        assert_eq!(health.breaker_trips, 0);
    }

    #[test]
    fn sustained_failures_trip_breaker_and_short_circuit() {
        let reg = ModelRegistry::new();
        reg.set_resolver_policy(fast_policy(2, 3, Duration::from_secs(60)));
        let flaky = Arc::new(FlakyResolver {
            entry: served_entry("user-2", 71),
            failures: AtomicUsize::new(usize::MAX),
            calls: AtomicUsize::new(0),
        });
        reg.attach_resolver(flaky.clone());
        // Three exhausted lookups (2 attempts each) open the breaker.
        for _ in 0..3 {
            assert!(reg.get("user-2").is_none());
        }
        assert_eq!(flaky.calls.load(Ordering::Relaxed), 6);
        let health = reg.resolver_health();
        assert_eq!(health.failures, 3);
        assert_eq!(health.breaker_trips, 1);
        assert_eq!(health.open_breakers, 1);
        // While open, lookups short-circuit without touching the store.
        assert!(reg.get("user-2").is_none());
        assert!(reg.get("user-2").is_none());
        assert_eq!(flaky.calls.load(Ordering::Relaxed), 6);
        assert_eq!(reg.resolver_health().short_circuits, 2);
        // Other keys are unaffected (per-key breakers); this lookup still
        // reaches the resolver and fails on its own account.
        assert!(reg.get("user-other").is_none());
        assert_eq!(flaky.calls.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn breaker_half_opens_after_cooldown_and_closes_on_success() {
        let reg = ModelRegistry::new();
        reg.set_resolver_policy(fast_policy(1, 2, Duration::from_millis(20)));
        let entry = served_entry("user-3", 72);
        let flaky = Arc::new(FlakyResolver {
            entry: entry.clone(),
            failures: AtomicUsize::new(2),
            calls: AtomicUsize::new(0),
        });
        reg.attach_resolver(flaky.clone());
        // Two exhausted single-attempt lookups trip the breaker.
        assert!(reg.get("user-3").is_none());
        assert!(reg.get("user-3").is_none());
        assert_eq!(reg.resolver_health().breaker_trips, 1);
        assert!(reg.get("user-3").is_none(), "open breaker short-circuits");
        assert_eq!(flaky.calls.load(Ordering::Relaxed), 2);
        // After the cooldown the next lookup probes the (now healthy)
        // store, succeeds, and closes the breaker.
        std::thread::sleep(Duration::from_millis(25));
        let got = reg.get("user-3").unwrap();
        assert!(Arc::ptr_eq(&got, &entry));
        let health = reg.resolver_health();
        assert_eq!(health.open_breakers, 0);
        // Follow-up lookups go straight through.
        assert!(reg.get("user-3").is_some());
        assert_eq!(reg.resolver_health().short_circuits, 1);
    }

    #[test]
    fn authoritative_miss_is_not_retried() {
        let reg = ModelRegistry::new();
        reg.set_resolver_policy(fast_policy(5, 3, Duration::from_secs(60)));
        let flaky = Arc::new(FlakyResolver {
            entry: served_entry("known", 73),
            failures: AtomicUsize::new(0),
            calls: AtomicUsize::new(0),
        });
        reg.attach_resolver(flaky.clone());
        // Ok(None) is an answer: one call, no retries, no breaker state.
        assert!(reg.get("absent").is_none());
        assert_eq!(flaky.calls.load(Ordering::Relaxed), 1);
        let health = reg.resolver_health();
        assert_eq!(health.retries, 0);
        assert_eq!(health.failures, 0);
    }

    #[test]
    fn list_reports_stable_memory_footprints() {
        let reg = ModelRegistry::new();
        reg.load_bytes("a", &toy_bytes(64)).unwrap();
        let first = reg.list();
        assert!(first[0].mem > 0);
        assert_eq!(first[0].mem, reg.list()[0].mem);
    }

    #[test]
    fn registry_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelRegistry>();
    }
}
