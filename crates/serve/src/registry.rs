//! Hot-swappable model registry.
//!
//! Models live behind `Arc` pointers inside an `RwLock<HashMap>`; a lookup
//! clones the `Arc` and releases the lock before any prediction work, and a
//! [`ModelRegistry::reload`] swaps the pointer under a brief write lock.
//! In-flight requests therefore keep predicting against the version they
//! resolved — a hot swap drops **zero** requests, it only changes what
//! later lookups observe (the `ArcSwap` pattern, built on `std` only).

use crate::bundle::ModelBundle;
use crate::ServeError;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// Metadata describing one loaded model version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelMeta {
    /// Registry name the model is served under.
    pub name: String,
    /// Monotonic version, starting at 1 and bumped by every reload.
    pub version: u64,
    /// FNV-1a hash of the bundle bytes (hex) — identifies the artefact.
    pub hash: String,
    /// Size of the bundle in bytes.
    pub bytes: usize,
    /// Raw feature width a `predict` row must have.
    pub input_dim: usize,
    /// Hypervector dimensionality `D`.
    pub dim: usize,
    /// Number of cluster/model pairs `k`.
    pub models: usize,
    /// Cluster quantisation mode label.
    pub cluster_mode: &'static str,
    /// Prediction quantisation mode label.
    pub prediction_mode: &'static str,
}

/// One immutable, shareable loaded model version.
#[derive(Debug)]
pub struct ServedModel {
    /// The deserialised bundle (model + scalers).
    pub bundle: ModelBundle,
    /// Metadata snapshot taken at load time.
    pub meta: ModelMeta,
}

/// Named collection of served models with atomic hot-swap semantics.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    inner: RwLock<HashMap<String, Arc<ServedModel>>>,
}

/// 64-bit FNV-1a over the bundle bytes.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn build_entry(name: &str, version: u64, bytes: &[u8]) -> Result<Arc<ServedModel>, ServeError> {
    let bundle = ModelBundle::from_bytes(bytes).map_err(ServeError::Bundle)?;
    let cfg = bundle.model().config();
    let meta = ModelMeta {
        name: name.to_string(),
        version,
        hash: format!("{:016x}", fnv1a(bytes)),
        bytes: bytes.len(),
        input_dim: bundle.num_features(),
        dim: cfg.dim,
        models: cfg.models,
        cluster_mode: cfg.cluster_mode.label(),
        prediction_mode: cfg.prediction_mode.label(),
    };
    Ok(Arc::new(ServedModel { bundle, meta }))
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads a new model under `name` from raw bundle bytes.
    ///
    /// # Errors
    ///
    /// [`ServeError::AlreadyLoaded`] if the name is taken (use
    /// [`ModelRegistry::reload_bytes`] to swap) or [`ServeError::Bundle`]
    /// if the bytes do not parse.
    pub fn load_bytes(&self, name: &str, bytes: &[u8]) -> Result<ModelMeta, ServeError> {
        let entry = build_entry(name, 1, bytes)?;
        let meta = entry.meta.clone();
        let mut map = self.inner.write().unwrap();
        if map.contains_key(name) {
            return Err(ServeError::AlreadyLoaded(name.to_string()));
        }
        map.insert(name.to_string(), entry);
        Ok(meta)
    }

    /// Loads a new model under `name` from a `.rghd` bundle file.
    ///
    /// # Errors
    ///
    /// See [`ModelRegistry::load_bytes`]; additionally [`ServeError::Io`]
    /// on filesystem failure.
    pub fn load(&self, name: &str, path: &str) -> Result<ModelMeta, ServeError> {
        let bytes = std::fs::read(path)?;
        self.load_bytes(name, &bytes)
    }

    /// Hot-swaps the model under `name` with new bundle bytes. The swap is
    /// atomic: lookups before it complete against the old version, lookups
    /// after it observe the new one; no request is dropped. The new bundle
    /// is parsed **before** the write lock is taken, so a corrupt artefact
    /// leaves the running version untouched.
    ///
    /// # Errors
    ///
    /// [`ServeError::NotFound`] when nothing is loaded under `name`,
    /// [`ServeError::Bundle`] when the bytes do not parse.
    pub fn reload_bytes(&self, name: &str, bytes: &[u8]) -> Result<ModelMeta, ServeError> {
        // Parse outside the lock (it deserialises megabytes of weights).
        let staged = build_entry(name, 0, bytes)?;
        let mut map = self.inner.write().unwrap();
        let old = map
            .get(name)
            .ok_or_else(|| ServeError::NotFound(name.to_string()))?;
        let version = old.meta.version + 1;
        let mut entry = Arc::into_inner(staged).expect("staged entry is uniquely owned");
        entry.meta.version = version;
        let meta = entry.meta.clone();
        map.insert(name.to_string(), Arc::new(entry));
        Ok(meta)
    }

    /// Hot-swaps the model under `name` from a `.rghd` bundle file. See
    /// [`ModelRegistry::reload_bytes`].
    ///
    /// # Errors
    ///
    /// See [`ModelRegistry::reload_bytes`]; additionally
    /// [`ServeError::Io`] on filesystem failure.
    pub fn reload(&self, name: &str, path: &str) -> Result<ModelMeta, ServeError> {
        let bytes = std::fs::read(path)?;
        self.reload_bytes(name, &bytes)
    }

    /// Removes the model under `name`. In-flight requests holding the Arc
    /// finish normally; the weights are freed when the last holder drops.
    ///
    /// # Errors
    ///
    /// [`ServeError::NotFound`] when nothing is loaded under `name`.
    pub fn unload(&self, name: &str) -> Result<ModelMeta, ServeError> {
        let mut map = self.inner.write().unwrap();
        map.remove(name)
            .map(|e| e.meta.clone())
            .ok_or_else(|| ServeError::NotFound(name.to_string()))
    }

    /// Resolves `name` to its current version. The returned `Arc` pins
    /// that version for the caller's lifetime regardless of later swaps.
    pub fn get(&self, name: &str) -> Option<Arc<ServedModel>> {
        self.inner.read().unwrap().get(name).cloned()
    }

    /// Metadata for every loaded model, sorted by name.
    pub fn list(&self) -> Vec<ModelMeta> {
        let map = self.inner.read().unwrap();
        let mut metas: Vec<ModelMeta> = map.values().map(|e| e.meta.clone()).collect();
        metas.sort_by(|a, b| a.name.cmp(&b.name));
        metas
    }

    /// Number of loaded models.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle;
    use datasets::Dataset;

    fn toy_bytes(seed: u64) -> Vec<u8> {
        let features: Vec<Vec<f32>> = (0..40).map(|i| vec![i as f32, (i * 2) as f32]).collect();
        let targets: Vec<f32> = features.iter().map(|r| r[0] + r[1]).collect();
        let ds = Dataset::new("toy", features, targets);
        let (b, _) = bundle::train(&ds, 128, 2, 3, seed, false).unwrap();
        b.to_bytes().unwrap()
    }

    #[test]
    fn load_get_list_unload() {
        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        let meta = reg.load_bytes("a", &toy_bytes(1)).unwrap();
        assert_eq!(meta.version, 1);
        assert_eq!(meta.input_dim, 2);
        assert_eq!(meta.dim, 128);
        assert_eq!(meta.models, 2);
        assert_eq!(meta.hash.len(), 16);
        assert!(reg.get("a").is_some());
        assert!(reg.get("b").is_none());
        assert_eq!(reg.list().len(), 1);
        assert_eq!(reg.unload("a").unwrap().name, "a");
        assert!(matches!(reg.unload("a"), Err(ServeError::NotFound(_))));
    }

    #[test]
    fn duplicate_load_rejected() {
        let reg = ModelRegistry::new();
        let bytes = toy_bytes(2);
        reg.load_bytes("m", &bytes).unwrap();
        assert!(matches!(
            reg.load_bytes("m", &bytes),
            Err(ServeError::AlreadyLoaded(_))
        ));
    }

    #[test]
    fn reload_bumps_version_and_preserves_in_flight_arc() {
        let reg = ModelRegistry::new();
        reg.load_bytes("m", &toy_bytes(3)).unwrap();
        let pinned = reg.get("m").unwrap();
        let meta = reg.reload_bytes("m", &toy_bytes(4)).unwrap();
        assert_eq!(meta.version, 2);
        // The pinned Arc still serves the old version.
        assert_eq!(pinned.meta.version, 1);
        assert_eq!(reg.get("m").unwrap().meta.version, 2);
        // Different bytes → different hash.
        assert_ne!(pinned.meta.hash, meta.hash);
    }

    #[test]
    fn reload_of_missing_name_fails() {
        let reg = ModelRegistry::new();
        assert!(matches!(
            reg.reload_bytes("ghost", &toy_bytes(5)),
            Err(ServeError::NotFound(_))
        ));
    }

    #[test]
    fn corrupt_reload_leaves_old_version_running() {
        let reg = ModelRegistry::new();
        reg.load_bytes("m", &toy_bytes(6)).unwrap();
        assert!(matches!(
            reg.reload_bytes("m", b"garbage"),
            Err(ServeError::Bundle(_))
        ));
        assert_eq!(reg.get("m").unwrap().meta.version, 1);
    }

    #[test]
    fn registry_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelRegistry>();
    }
}
