//! Chaos end-to-end test: a full server under a randomized-but-seeded
//! fault storm. The invariants under test are the serving layer's
//! robustness contract:
//!
//! 1. **Zero panics.** No client or server thread may panic, no matter
//!    which faults fire (worker delays, kills, deliberate batch panics,
//!    garbled request lines, bit-flipped model state, corrupted bundles).
//! 2. **Bounded, well-formed replies.** Every request receives exactly one
//!    reply line, and it is one of `ok <finite>`, `degraded <finite>`, or
//!    `err <reason>` — never silence, never trash.
//! 3. **Full recovery.** After the fault window closes (faults cleared,
//!    corrupted model swept and rolled back), predictions are bit-exact
//!    identical to the pre-fault baseline.

use datasets::Dataset;
use reghd_serve::bundle::{self, ModelBundle};
use reghd_serve::registry::ModelRegistry;
use reghd_serve::server::{serve, ServerConfig, ServerHandle};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 424_242;
const STORM_CLIENTS: usize = 3;
const STORM_REQUESTS: usize = 8;

fn toy_dataset() -> Dataset {
    let features: Vec<Vec<f32>> = (0..60)
        .map(|i| vec![i as f32 * 0.5, (i % 7) as f32, (i * 3 % 11) as f32])
        .collect();
    let targets: Vec<f32> = features
        .iter()
        .map(|r| 2.0 * r[0] - r[1] + 0.5 * r[2])
        .collect();
    Dataset::new("chaos", features, targets)
}

fn train_bundle(seed: u64) -> ModelBundle {
    let (b, _) = bundle::train(&toy_dataset(), 256, 4, 4, seed, false).unwrap();
    b
}

fn row_to_csv(row: &[f32]) -> String {
    row.iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Self {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn request(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").unwrap();
        self.writer.flush().unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).unwrap();
        assert!(!reply.is_empty(), "server dropped a request: {line}");
        reply.trim_end().to_string()
    }
}

/// Invariant 2: classifies a reply, panicking on anything malformed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reply {
    Ok,
    Degraded,
    Err,
}

fn classify(reply: &str) -> Reply {
    if let Some(rest) = reply.strip_prefix("ok ") {
        let y: f32 = rest.parse().unwrap_or_else(|_| panic!("bad ok: {reply}"));
        assert!(y.is_finite(), "non-finite ok reply: {reply}");
        Reply::Ok
    } else if let Some(rest) = reply.strip_prefix("degraded ") {
        let y: f32 = rest
            .parse()
            .unwrap_or_else(|_| panic!("bad degraded: {reply}"));
        assert!(y.is_finite(), "non-finite degraded reply: {reply}");
        Reply::Degraded
    } else if let Some(rest) = reply.strip_prefix("err ") {
        assert!(!rest.trim().is_empty(), "empty err reply");
        Reply::Err
    } else {
        panic!("malformed reply: {reply:?}");
    }
}

/// Fires `STORM_CLIENTS` concurrent clients, each sending
/// `STORM_REQUESTS` predict requests over seeded row indices. Returns the
/// classified replies; panics (failing the test) on any malformed one.
fn storm(addr: SocketAddr, rows: &[Vec<f32>], phase: u64) -> Vec<Reply> {
    let handles: Vec<_> = (0..STORM_CLIENTS)
        .map(|c| {
            let rows = rows.to_vec();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                // Simple seeded LCG so each phase/client walks its own
                // deterministic row sequence.
                let mut state = SEED
                    .wrapping_mul(phase * 31 + c as u64 + 1)
                    .wrapping_add(0x9E37_79B9);
                (0..STORM_REQUESTS)
                    .map(|_| {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let idx = (state >> 33) as usize % rows.len();
                        let reply =
                            client.request(&format!("predict toy {}", row_to_csv(&rows[idx])));
                        classify(&reply)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    handles
        .into_iter()
        .flat_map(|h| h.join().expect("storm client panicked"))
        .collect()
}

/// Invariant 3 helper: the server's current answers for every row.
fn snapshot(client: &mut Client, rows: &[Vec<f32>]) -> Vec<String> {
    rows.iter()
        .map(|r| client.request(&format!("predict toy {}", row_to_csv(r))))
        .collect()
}

fn stats_lines(client: &mut Client) -> Vec<String> {
    writeln!(client.writer, "stats").unwrap();
    client.writer.flush().unwrap();
    let mut lines = Vec::new();
    loop {
        let mut line = String::new();
        client.reader.read_line(&mut line).unwrap();
        let line = line.trim_end().to_string();
        let done = line == "ok";
        lines.push(line);
        if done {
            break;
        }
    }
    lines
}

fn start_chaos_server() -> (ServerHandle, Arc<ModelRegistry>, ModelBundle) {
    let b = train_bundle(101);
    let registry = Arc::new(ModelRegistry::new());
    registry.load_bytes("toy", &b.to_bytes().unwrap()).unwrap();
    let handle = serve(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 3,
            read_timeout: Duration::from_secs(30),
            // Short reply timeout so delay faults trip the degraded path
            // quickly instead of stretching the test.
            reply_timeout: Duration::from_millis(100),
            enable_inject: true,
            fault_seed: SEED,
            ..ServerConfig::default()
        },
        registry.clone(),
    )
    .unwrap();
    (handle, registry, b)
}

#[test]
fn seeded_fault_storm_recovers_bit_exact() {
    let (handle, _registry, baseline_bundle) = start_chaos_server();
    let addr = handle.local_addr();
    let rows = toy_dataset().features;
    let mut admin = Client::connect(addr);

    // ---- Baseline: clean server, every reply `ok` and bit-exact. ----
    let baseline = snapshot(&mut admin, &rows);
    for (reply, want) in baseline.iter().zip(baseline_bundle.predict(&rows).unwrap()) {
        assert_eq!(reply, &format!("ok {want}"));
    }

    // ---- Fault window 1: stalled workers → degraded replies. ----
    assert_eq!(admin.request("inject delay 300"), "ok");
    let replies = storm(addr, &rows, 1);
    assert_eq!(replies.len(), STORM_CLIENTS * STORM_REQUESTS);
    assert!(
        replies.contains(&Reply::Degraded),
        "a 300ms stall against a 100ms reply timeout must degrade: {replies:?}"
    );
    assert!(
        replies.iter().all(|r| *r != Reply::Err),
        "stalls must degrade, not error: {replies:?}"
    );
    handle.injector().clear();

    // ---- Fault window 2: kill a worker mid-traffic. ----
    assert_eq!(admin.request("inject kill 1"), "ok");
    let replies = storm(addr, &rows, 2);
    assert_eq!(replies.len(), STORM_CLIENTS * STORM_REQUESTS);
    assert!(
        replies.iter().all(|r| *r != Reply::Err),
        "a killed worker's dropped batch must degrade, not error: {replies:?}"
    );

    // ---- Fault window 3: deliberate worker panics (containment). ----
    assert_eq!(admin.request("inject panic 2"), "ok");
    let replies = storm(addr, &rows, 3);
    assert_eq!(replies.len(), STORM_CLIENTS * STORM_REQUESTS);
    assert!(
        replies.iter().all(|r| *r != Reply::Err),
        "a contained panic must degrade, not error: {replies:?}"
    );

    // ---- Fault window 4: garbled request lines → typed errors. ----
    handle.injector().set_garble_rate(1.0);
    let replies = storm(addr, &rows, 4);
    assert_eq!(replies.len(), STORM_CLIENTS * STORM_REQUESTS);
    // Nearly every line is garbled (the rare miss is the RNG landing on
    // the trailing newline); garbled requests must surface as protocol
    // errors, never as framing breaks or panics.
    let errs = replies.iter().filter(|r| **r == Reply::Err).count();
    assert!(
        errs >= replies.len() / 2,
        "garbling barely fired: {replies:?}"
    );
    handle.injector().clear();

    // ---- Recovery A: faults cleared, untouched model — bit-exact. ----
    assert_eq!(snapshot(&mut admin, &rows), baseline);

    // ---- Fault window 5: bit flips in served hypervectors. ----
    let reply = admin.request(&format!("inject bitflip toy 0.25 {SEED}"));
    assert!(reply.starts_with("ok injected flips="), "{reply}");
    let faulted = snapshot(&mut admin, &rows);
    assert_ne!(faulted, baseline, "flips must perturb some prediction");
    // Every faulted reply is still well-formed and finite.
    for r in &faulted {
        classify(r);
    }

    // ---- Recovery B: sweep detects the corruption and rolls back. ----
    assert_eq!(
        admin.request("sweep"),
        "ok swept checked=1 corrupted=1 rolled_back=1"
    );
    assert_eq!(
        snapshot(&mut admin, &rows),
        baseline,
        "post-rollback predictions must match the pre-fault model bit-exactly"
    );

    // ---- Fault window 6: corrupted bundle bytes are refused at load. ----
    let v2 = train_bundle(202);
    let mut bytes = v2.to_bytes().unwrap();
    let idx = bytes.len() - 100;
    bytes[idx] ^= 0x40;
    let dir = std::env::temp_dir();
    let bad_path = dir.join(format!("reghd-chaos-bad-{}.rghd", std::process::id()));
    std::fs::write(&bad_path, &bytes).unwrap();
    let reply = admin.request(&format!("reload toy {}", bad_path.display()));
    assert!(
        reply.starts_with("err ") && reply.contains("checksum mismatch"),
        "corrupt bundle must be rejected with a checksum error: {reply}"
    );
    assert_eq!(
        snapshot(&mut admin, &rows),
        baseline,
        "a refused reload must leave the old version serving"
    );

    // ---- Fault window 7: canary-failing bundle is refused at load. ----
    let lying = train_bundle(303)
        .with_canary(vec![rows[0].clone()], vec![123_456.0])
        .unwrap();
    let lie_path = dir.join(format!("reghd-chaos-lie-{}.rghd", std::process::id()));
    lying.save(lie_path.to_str().unwrap()).unwrap();
    let reply = admin.request(&format!("reload toy {}", lie_path.display()));
    assert!(
        reply.starts_with("err canary check failed"),
        "canary mismatch must be refused: {reply}"
    );
    assert_eq!(
        snapshot(&mut admin, &rows),
        baseline,
        "a canary-refused reload must leave the old version serving"
    );

    // ---- A clean reload still works after the whole storm. ----
    let good_path = dir.join(format!("reghd-chaos-good-{}.rghd", std::process::id()));
    v2.save(good_path.to_str().unwrap()).unwrap();
    assert_eq!(
        admin.request(&format!("reload toy {}", good_path.display())),
        "ok reloaded toy v2"
    );
    let v2_want: Vec<String> = v2
        .predict(&rows)
        .unwrap()
        .into_iter()
        .map(|y| format!("ok {y}"))
        .collect();
    assert_eq!(snapshot(&mut admin, &rows), v2_want);

    // ---- Bookkeeping: the storm is visible in the metrics. ----
    let lines = stats_lines(&mut admin);
    let stat = lines
        .iter()
        .find(|l| l.starts_with("stat toy "))
        .unwrap_or_else(|| panic!("no stat line in {lines:?}"));
    let field = |name: &str| -> u64 {
        stat.split(&format!("{name}="))
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("no {name}= in {stat}"))
    };
    assert!(field("degraded") >= 1, "{stat}");
    assert!(field("panics") >= 1, "{stat}");
    let server = lines
        .iter()
        .find(|l| l.starts_with("server "))
        .unwrap_or_else(|| panic!("no server line in {lines:?}"));
    assert!(server.contains("canary_failures=1"), "{server}");
    assert!(server.contains("rollbacks=1"), "{server}");
    assert!(server.contains("sweeps=1"), "{server}");

    handle.shutdown();
    for p in [&bad_path, &lie_path, &good_path] {
        let _ = std::fs::remove_file(p);
    }
}
