//! End-to-end serving test over loopback TCP: train a tiny model, serve
//! it, hammer it from concurrent clients, hot-swap the model mid-stream,
//! and verify that every request gets a correct answer for whichever
//! version it resolved — zero drops, zero cross-version corruption.

use datasets::Dataset;
use reghd_serve::bundle::{self, ModelBundle};
use reghd_serve::registry::ModelRegistry;
use reghd_serve::server::{serve, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

const CLIENTS: usize = 4;
const PHASE1: usize = 100; // requests before the swap window opens
const PHASE2: usize = 150; // requests racing the hot swap
const PHASE3: usize = 50; // requests strictly after the swap confirmed

fn toy_dataset() -> Dataset {
    let features: Vec<Vec<f32>> = (0..60)
        .map(|i| vec![i as f32 * 0.5, (i % 7) as f32, (i * 3 % 11) as f32])
        .collect();
    let targets: Vec<f32> = features
        .iter()
        .map(|r| 2.0 * r[0] - r[1] + 0.5 * r[2])
        .collect();
    Dataset::new("e2e", features, targets)
}

fn train_bundle(seed: u64) -> ModelBundle {
    let (b, _) = bundle::train(&toy_dataset(), 256, 4, 4, seed, false).unwrap();
    b
}

/// The exact `ok <y>` reply line the server must produce for each row.
fn expected_replies(b: &ModelBundle, rows: &[Vec<f32>]) -> Vec<String> {
    b.predict(rows)
        .unwrap()
        .into_iter()
        .map(|y| format!("ok {y}"))
        .collect()
}

fn row_to_csv(row: &[f32]) -> String {
    row.iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Self {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn request(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").unwrap();
        self.writer.flush().unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).unwrap();
        assert!(!reply.is_empty(), "server dropped a request: {line}");
        reply.trim_end().to_string()
    }
}

#[test]
fn concurrent_clients_with_mid_stream_hot_swap() {
    let v1 = train_bundle(101);
    let v2 = train_bundle(202);
    let rows: Vec<Vec<f32>> = toy_dataset().features;
    let want_v1 = expected_replies(&v1, &rows);
    let want_v2 = expected_replies(&v2, &rows);
    // The two models must actually disagree somewhere, otherwise the
    // version assertions below are vacuous.
    assert_ne!(want_v1, want_v2, "seeds produced identical models");

    let v2_path = std::env::temp_dir().join(format!("reghd-e2e-{}.rghd", std::process::id()));
    v2.save(v2_path.to_str().unwrap()).unwrap();

    let registry = Arc::new(ModelRegistry::new());
    registry.load_bytes("toy", &v1.to_bytes().unwrap()).unwrap();
    let handle = serve(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 3,
            ..ServerConfig::default()
        },
        registry,
    )
    .unwrap();
    let addr = handle.local_addr();

    // Barrier holds every client at the phase-1/phase-2 boundary so the
    // hot swap provably races phase-2 traffic; `swapped` gates phase 3.
    let barrier = Arc::new(Barrier::new(CLIENTS + 1));
    let swapped = Arc::new(AtomicBool::new(false));

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let barrier = barrier.clone();
            let swapped = swapped.clone();
            let rows = rows.clone();
            let want_v1 = want_v1.clone();
            let want_v2 = want_v2.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut v1_seen = 0usize;
                let mut v2_seen = 0usize;
                // Phase 1: the swap has not happened yet — every reply
                // must match version 1 exactly.
                for i in 0..PHASE1 {
                    let idx = (c * 31 + i) % rows.len();
                    let reply = client.request(&format!("predict toy {}", row_to_csv(&rows[idx])));
                    assert_eq!(reply, want_v1[idx], "phase 1 mismatch at idx {idx}");
                    v1_seen += 1;
                }
                barrier.wait();
                // Phase 2: racing the hot swap — each reply must match
                // exactly one of the two versions, never a blend.
                for i in 0..PHASE2 {
                    let idx = (c * 17 + i) % rows.len();
                    let reply = client.request(&format!("predict toy {}", row_to_csv(&rows[idx])));
                    if reply == want_v1[idx] {
                        v1_seen += 1;
                    } else if reply == want_v2[idx] {
                        v2_seen += 1;
                    } else {
                        panic!("phase 2 reply matches neither version at idx {idx}: {reply}");
                    }
                }
                // Phase 3: strictly after the swap — must be version 2.
                while !swapped.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                for i in 0..PHASE3 {
                    let idx = (c * 7 + i) % rows.len();
                    let reply = client.request(&format!("predict toy {}", row_to_csv(&rows[idx])));
                    assert_eq!(reply, want_v2[idx], "phase 3 mismatch at idx {idx}");
                    v2_seen += 1;
                }
                (v1_seen, v2_seen)
            })
        })
        .collect();

    // Release phase 2, then swap while requests are in flight.
    barrier.wait();
    let mut admin = Client::connect(addr);
    let reply = admin.request(&format!("reload toy {}", v2_path.display()));
    assert_eq!(reply, "ok reloaded toy v2");
    swapped.store(true, Ordering::SeqCst);

    let mut total_v1 = 0;
    let mut total_v2 = 0;
    for h in clients {
        let (v1_seen, v2_seen) = h.join().expect("client thread panicked");
        assert_eq!(
            v1_seen + v2_seen,
            PHASE1 + PHASE2 + PHASE3,
            "a client lost replies"
        );
        total_v1 += v1_seen;
        total_v2 += v2_seen;
    }
    // Both versions must have actually served traffic.
    assert!(total_v1 >= CLIENTS * PHASE1);
    assert!(total_v2 >= CLIENTS * PHASE3);

    // The stats dump must account for every row and a live histogram.
    let mut lines = Vec::new();
    writeln!(admin.writer, "stats").unwrap();
    admin.writer.flush().unwrap();
    loop {
        let mut line = String::new();
        admin.reader.read_line(&mut line).unwrap();
        let line = line.trim_end().to_string();
        let done = line == "ok";
        lines.push(line);
        if done {
            break;
        }
    }
    let total = CLIENTS * (PHASE1 + PHASE2 + PHASE3);
    let stat = lines
        .iter()
        .find(|l| l.starts_with("stat toy "))
        .unwrap_or_else(|| panic!("no stat line in {lines:?}"));
    assert!(stat.contains(&format!("ok={total}")), "{stat}");
    assert!(stat.contains("shed=0"), "{stat}");
    let p50: u64 = stat
        .split("p50us=")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .unwrap();
    assert!(p50 > 0, "latency histogram must be non-empty: {stat}");
    assert!(
        lines.iter().any(|l| l.starts_with("model toy v2")),
        "{lines:?}"
    );

    let final_stats = handle.shutdown();
    assert!(final_stats
        .iter()
        .any(|l| l.contains(&format!("ok={total}"))));
    let _ = std::fs::remove_file(&v2_path);
}
