//! # reghd-store — sharded per-user model store for RegHD serving
//!
//! RegHD's models are tiny — `k` cluster hypervectors plus `k` model
//! hypervectors and a handful of scalars — which is precisely what makes a
//! **per-user** model fleet practical: a million residents fit in a few
//! packfiles. This crate scales the serving registry from "a handful of
//! operator-loaded names" to that fleet:
//!
//! * **Sharding** ([`store::ModelStore`]) — keys are FNV-hashed onto `N`
//!   shards, each with its own lock, packfiles, index, and hot cache, so
//!   lookups and publishes on different users never contend.
//! * **Packfiles + mmap** ([`pack`]) — `.rghd` v2 bundles live
//!   back-to-back in per-shard pack files, memory-mapped read-only
//!   ([`mmap::MappedFile`]). Section CRCs are **not** swept at startup;
//!   each section is verified lazily on first touch
//!   ([`reghd_serve::bundle::SectionFrames`]), so indexing a million
//!   resident bundles stays O(keys), not O(bytes).
//! * **Hot LRU** ([`lru::LruCache`]) — decoded models are cached under a
//!   byte budget with hit/miss/eviction counters; everything else stays
//!   cold on disk until resolved.
//! * **Delta publication** ([`delta::ModelDelta`]) — the streaming trainer
//!   republishes only the cluster/model hypervectors that changed since
//!   the last publish; the store applies the delta to the base image and
//!   verifies the result hashes to the exact bytes a full publish would
//!   have produced. Publication is canary-gated, and a key whose current
//!   image fails validation on first touch rolls back to its last-good
//!   version — per key, without disturbing any other resident model.
//!
//! The store plugs into the serving layer as a
//! [`reghd_serve::registry::ModelResolver`]: registry lookups fall through
//! to [`store::ModelStore::get`] for names the in-process map does not
//! hold.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod delta;
pub mod faults;
pub mod lru;
pub mod mmap;
pub mod pack;
pub mod store;

pub use delta::ModelDelta;
pub use faults::StoreFaultInjector;
pub use lru::LruCache;
pub use mmap::MappedFile;
pub use pack::{PackLoc, PackSet};
pub use store::{ModelStore, StoreConfig, StoreStats};

/// Errors surfaced by the model store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure (pack append, index log, mmap).
    Io(std::io::Error),
    /// Stored bytes failed structural or checksum validation.
    Corrupt(String),
    /// A published artefact failed validation before it was admitted.
    Bundle(String),
    /// A published artefact parsed but failed its canary replay.
    Canary(String),
    /// No model is resident under the requested key.
    NotFound(String),
    /// A delta could not be applied to its base image.
    Delta(String),
    /// A key contains characters the index log cannot carry.
    BadKey(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::Corrupt(msg) => write!(f, "corrupt store data: {msg}"),
            Self::Bundle(msg) => write!(f, "bad bundle: {msg}"),
            Self::Canary(msg) => write!(f, "canary check failed: {msg}"),
            Self::NotFound(key) => write!(f, "unknown key {key}"),
            Self::Delta(msg) => write!(f, "delta rejected: {msg}"),
            Self::BadKey(key) => write!(f, "invalid key {key:?} (use [A-Za-z0-9._:-])"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// 64-bit FNV-1a — the store's artefact identity hash, matching the
/// serving registry's bundle hash so `list` output lines up across both.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_with_context() {
        assert!(StoreError::NotFound("u1".into()).to_string().contains("u1"));
        assert!(StoreError::Corrupt("bad crc".into())
            .to_string()
            .contains("bad crc"));
        assert!(StoreError::BadKey("a b".into()).to_string().contains("a b"));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
    }
}
