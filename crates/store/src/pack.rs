//! Packfile layer: append-only blob files plus a replayable index log.
//!
//! Each store shard owns one directory:
//!
//! ```text
//! shard-<i>/pack-<gen>.bin   back-to-back .rghd bundle images
//! shard-<i>/index.log        text log, one record per publish/rollback
//! ```
//!
//! Pack files are **append-only** within a generation; compaction writes
//! the live blobs into a fresh generation, atomically rewrites `index.log`
//! (write-temp-then-rename), and deletes retired generations — a crash at
//! any point leaves either the old complete state or the new complete
//! state. Opened packs are memory-mapped read-only; reads inside the
//! mapped snapshot are zero-copy, reads beyond it (bytes appended since
//! the map was taken) fall back to positioned reads until the next
//! [`PackSet::remap_active`].
//!
//! Durability ordering: blob bytes are fsynced ([`PackSet::sync_active`])
//! before the index record that points at them is appended (itself
//! fsynced), so a power failure may orphan blob bytes but never commits
//! an index entry whose blob was lost.
//!
//! Nothing here interprets bundle bytes — integrity is the bundle layer's
//! lazily verified per-section CRCs, identity is the index log's FNV hash.

use crate::faults::{self, StoreFaultInjector};
use crate::mmap::MappedFile;
use std::borrow::Cow;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Location of one blob inside a [`PackSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackLoc {
    /// Pack generation the blob lives in.
    pub gen: u32,
    /// Byte offset of the blob within that pack.
    pub offset: u64,
    /// Blob length in bytes.
    pub len: u32,
}

/// One replayed `index.log` record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// A publish: `key`'s current image became the blob at `loc`.
    Put {
        /// Store key the blob was published under.
        key: String,
        /// Where the blob landed.
        loc: PackLoc,
        /// FNV-1a of the blob bytes.
        hash: u64,
        /// Monotonic per-key version.
        version: u64,
    },
    /// A validation-triggered rollback: `key` reverted to its last-good
    /// image.
    Rollback {
        /// Store key that rolled back.
        key: String,
    },
}

/// One opened pack generation.
#[derive(Debug)]
struct Pack {
    file: File,
    map: MappedFile,
    /// Tracked file length — appends advance it ahead of the mapped
    /// snapshot.
    len: u64,
}

/// A shard's set of pack generations plus the append handle for the
/// active one.
#[derive(Debug)]
pub struct PackSet {
    dir: PathBuf,
    packs: HashMap<u32, Pack>,
    active: u32,
    writer: File,
    /// Chaos-testing seam; `None` (the default) costs nothing on the
    /// write path beyond an `Option` check.
    faults: Option<Arc<StoreFaultInjector>>,
}

fn pack_path(dir: &Path, gen: u32) -> PathBuf {
    dir.join(format!("pack-{gen}.bin"))
}

fn open_pack(dir: &Path, gen: u32) -> io::Result<Pack> {
    let path = pack_path(dir, gen);
    let file = File::open(&path)?;
    let len = file.metadata()?.len();
    let map = MappedFile::map(&file, len as usize)?;
    Ok(Pack { file, map, len })
}

/// Positioned read of `len` bytes at `offset` — the fallback for blobs
/// beyond the mapped snapshot.
fn read_at(file: &File, offset: u64, len: usize) -> io::Result<Vec<u8>> {
    let mut buf = vec![0u8; len];
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.read_exact_at(&mut buf, offset)?;
    }
    #[cfg(not(unix))]
    {
        use std::io::{Read, Seek, SeekFrom};
        let mut f = file.try_clone()?;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(&mut buf)?;
    }
    Ok(buf)
}

impl PackSet {
    /// Opens (creating if absent) the pack set in `dir`. Existing
    /// generations are scanned from the directory; appends go to the
    /// highest one.
    pub fn open(dir: &Path) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let mut gens: Vec<u32> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(g) = name
                .strip_prefix("pack-")
                .and_then(|s| s.strip_suffix(".bin"))
                .and_then(|s| s.parse::<u32>().ok())
            {
                gens.push(g);
            }
        }
        let active = match gens.iter().max() {
            Some(&g) => g,
            None => {
                File::create(pack_path(dir, 1))?;
                gens.push(1);
                1
            }
        };
        let mut packs = HashMap::new();
        for g in gens {
            packs.insert(g, open_pack(dir, g)?);
        }
        let writer = OpenOptions::new()
            .append(true)
            .open(pack_path(dir, active))?;
        Ok(Self {
            dir: dir.to_path_buf(),
            packs,
            active,
            writer,
            faults: None,
        })
    }

    /// Attaches a fault injector consulted by every write-path operation
    /// (see [`crate::faults`]). Reads are never faulted here — read-side
    /// corruption is the bundle layer's CRC territory.
    pub fn set_faults(&mut self, faults: Option<Arc<StoreFaultInjector>>) {
        self.faults = faults;
    }

    /// The attached fault injector, if any — shared with the index-log
    /// helpers so one seam covers the whole write path.
    pub fn faults(&self) -> Option<&StoreFaultInjector> {
        self.faults.as_deref()
    }

    /// Appends a blob to the active generation and returns its location.
    ///
    /// An injected ENOSPC fails before any byte lands; an injected short
    /// write persists a prefix of the blob and then fails, advancing the
    /// tracked pack length by exactly the bytes written so later appends
    /// (and the orphaned prefix) stay addressable and non-overlapping.
    pub fn append(&mut self, bytes: &[u8]) -> io::Result<PackLoc> {
        let pack = self
            .packs
            .get_mut(&self.active)
            .expect("active pack is always open");
        let offset = pack.len;
        if let Some(f) = &self.faults {
            if f.take_enospc_append() {
                return Err(faults::enospc_error());
            }
            if f.take_short_write() {
                let wrote = bytes.len() / 2;
                self.writer.write_all(&bytes[..wrote])?;
                self.writer.flush()?;
                pack.len += wrote as u64;
                return Err(faults::short_write_error(wrote, bytes.len()));
            }
        }
        self.writer.write_all(bytes)?;
        self.writer.flush()?;
        pack.len += bytes.len() as u64;
        Ok(PackLoc {
            gen: self.active,
            offset,
            len: bytes.len() as u32,
        })
    }

    /// Fsyncs the active generation's appended bytes. Callers sync the
    /// pack **before** writing the index record that points into it, so a
    /// power failure can lose a blob-without-record (harmless) but never
    /// commit a record-without-blob.
    pub fn sync_active(&self) -> io::Result<()> {
        if let Some(f) = &self.faults {
            if f.take_fsync_failure() {
                return Err(faults::fsync_error());
            }
        }
        self.writer.sync_data()
    }

    /// Reads the blob at `loc`: zero-copy from the mapped snapshot when
    /// covered, positioned read for bytes appended since the last remap.
    pub fn read(&self, loc: PackLoc) -> io::Result<Cow<'_, [u8]>> {
        let pack = self.packs.get(&loc.gen).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("pack generation {} not open", loc.gen),
            )
        })?;
        let end = loc
            .offset
            .checked_add(u64::from(loc.len))
            .filter(|&e| e <= pack.len)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!(
                        "blob {}+{} outside pack {} (len {})",
                        loc.offset, loc.len, loc.gen, pack.len
                    ),
                )
            })?;
        if end as usize <= pack.map.len() {
            let s = loc.offset as usize;
            Ok(Cow::Borrowed(&pack.map.as_slice()[s..s + loc.len as usize]))
        } else {
            read_at(&pack.file, loc.offset, loc.len as usize).map(Cow::Owned)
        }
    }

    /// Re-maps the active generation so appends since the last map become
    /// zero-copy reads. Cheap enough to call after every compaction and
    /// periodically under sustained publishing.
    pub fn remap_active(&mut self) -> io::Result<()> {
        let pack = self
            .packs
            .get_mut(&self.active)
            .expect("active pack is always open");
        pack.map = MappedFile::map(&pack.file, pack.len as usize)?;
        Ok(())
    }

    /// Starts a fresh generation; subsequent appends land there. Used by
    /// compaction to rewrite live blobs before retiring old generations.
    pub fn start_new_gen(&mut self) -> io::Result<u32> {
        let gen = self.active + 1;
        File::create(pack_path(&self.dir, gen))?;
        self.packs.insert(gen, open_pack(&self.dir, gen)?);
        self.writer = OpenOptions::new()
            .append(true)
            .open(pack_path(&self.dir, gen))?;
        self.active = gen;
        Ok(gen)
    }

    /// Deletes every generation except `keep` (compaction's final step).
    pub fn retire_except(&mut self, keep: &[u32]) -> io::Result<()> {
        let retired: Vec<u32> = self
            .packs
            .keys()
            .copied()
            .filter(|g| !keep.contains(g))
            .collect();
        for g in retired {
            self.packs.remove(&g);
            std::fs::remove_file(pack_path(&self.dir, g))?;
        }
        Ok(())
    }

    /// The generation currently receiving appends.
    pub fn active_gen(&self) -> u32 {
        self.active
    }

    /// Total bytes across all open generations.
    pub fn total_bytes(&self) -> u64 {
        self.packs.values().map(|p| p.len).sum()
    }

    /// Number of open generations.
    pub fn generations(&self) -> usize {
        self.packs.len()
    }

    /// Whether the active generation's snapshot is a true kernel mapping.
    pub fn kernel_mapped(&self) -> bool {
        self.packs
            .get(&self.active)
            .is_some_and(|p| p.map.is_kernel_mapping() || p.map.is_empty())
    }
}

// ---------------------------------------------------------------------------
// Index log

fn log_path(dir: &Path) -> PathBuf {
    dir.join("index.log")
}

/// Renders one record as its log line.
pub fn format_record(rec: &LogRecord) -> String {
    match rec {
        LogRecord::Put {
            key,
            loc,
            hash,
            version,
        } => format!(
            "put {key} {} {} {} {hash:016x} {version}",
            loc.gen, loc.offset, loc.len
        ),
        LogRecord::Rollback { key } => format!("rollback {key}"),
    }
}

fn parse_record(line: &str) -> Option<LogRecord> {
    let mut parts = line.split_whitespace();
    match parts.next()? {
        "put" => {
            let key = parts.next()?.to_string();
            let gen = parts.next()?.parse().ok()?;
            let offset = parts.next()?.parse().ok()?;
            let len = parts.next()?.parse().ok()?;
            let hash = u64::from_str_radix(parts.next()?, 16).ok()?;
            let version = parts.next()?.parse().ok()?;
            if parts.next().is_some() {
                return None;
            }
            Some(LogRecord::Put {
                key,
                loc: PackLoc { gen, offset, len },
                hash,
                version,
            })
        }
        "rollback" => {
            let key = parts.next()?.to_string();
            if parts.next().is_some() {
                return None;
            }
            Some(LogRecord::Rollback { key })
        }
        _ => None,
    }
}

/// Replays `index.log`. Returns the parsed records and whether a torn
/// tail was dropped: replay stops at the first malformed line, so a crash
/// mid-append costs at most the record being written.
pub fn read_index_log(dir: &Path) -> io::Result<(Vec<LogRecord>, bool)> {
    let content = match std::fs::read_to_string(log_path(dir)) {
        Ok(c) => c,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), false)),
        Err(e) => return Err(e),
    };
    let mut records = Vec::new();
    for line in content.lines() {
        if line.is_empty() {
            continue;
        }
        match parse_record(line) {
            Some(r) => records.push(r),
            None => return Ok((records, true)),
        }
    }
    Ok((records, false))
}

/// Appends one record to `index.log` (newline-delimited, fsynced). The
/// blob the record points at must already be synced — see
/// [`PackSet::sync_active`].
///
/// An injected fsync failure fires **before** the record bytes are
/// written: after a real failed fsync the caller must assume the record
/// was lost, so the injection models the conservative (and recoverable)
/// reading — on-disk state and the caller's restored in-memory state
/// agree that the record never landed.
pub fn append_index_log(
    dir: &Path,
    rec: &LogRecord,
    faults: Option<&StoreFaultInjector>,
) -> io::Result<()> {
    if let Some(f) = faults {
        if f.take_fsync_failure() {
            return Err(faults::fsync_error());
        }
    }
    let mut f = OpenOptions::new()
        .create(true)
        .append(true)
        .open(log_path(dir))?;
    f.write_all(format_record(rec).as_bytes())?;
    f.write_all(b"\n")?;
    f.sync_data()
}

/// Atomically replaces `index.log` with `records` (write temp, rename) —
/// compaction's commit point.
///
/// An injected torn rename "crashes" after the temp file is written and
/// synced but before the rename commits: the previous `index.log` stays
/// authoritative, exactly the crash window the rename scheme defends.
pub fn rewrite_index_log(
    dir: &Path,
    records: &[LogRecord],
    faults: Option<&StoreFaultInjector>,
) -> io::Result<()> {
    let tmp = dir.join("index.log.tmp");
    {
        let mut f = File::create(&tmp)?;
        for r in records {
            f.write_all(format_record(r).as_bytes())?;
            f.write_all(b"\n")?;
        }
        f.sync_all()?;
    }
    if let Some(f) = faults {
        if f.take_torn_rename() {
            return Err(faults::torn_rename_error());
        }
    }
    std::fs::rename(&tmp, log_path(dir))?;
    // Persist the rename itself; without this a power loss can revive the
    // pre-rewrite log.
    File::open(dir)?.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("reghd_store_pack_{name}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn append_read_roundtrip_and_tail_reads() {
        let dir = tmpdir("roundtrip");
        let mut ps = PackSet::open(&dir).unwrap();
        let a = ps.append(b"alpha").unwrap();
        let b = ps.append(b"bravo-bytes").unwrap();
        // Both blobs were appended after the (empty) map snapshot — reads
        // take the positioned-read path.
        assert_eq!(&*ps.read(a).unwrap(), b"alpha");
        assert_eq!(&*ps.read(b).unwrap(), b"bravo-bytes");
        // After a remap they come from the mapping.
        ps.remap_active().unwrap();
        assert!(matches!(ps.read(a).unwrap(), Cow::Borrowed(_)));
        assert_eq!(&*ps.read(b).unwrap(), b"bravo-bytes");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_recovers_lengths_and_blobs() {
        let dir = tmpdir("reopen");
        let loc = {
            let mut ps = PackSet::open(&dir).unwrap();
            ps.append(b"persistent").unwrap()
        };
        let ps = PackSet::open(&dir).unwrap();
        assert_eq!(&*ps.read(loc).unwrap(), b"persistent");
        assert_eq!(ps.active_gen(), 1);
        assert_eq!(ps.total_bytes(), 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_bounds_read_fails() {
        let dir = tmpdir("oob");
        let mut ps = PackSet::open(&dir).unwrap();
        ps.append(b"tiny").unwrap();
        let bad = PackLoc {
            gen: 1,
            offset: 2,
            len: 100,
        };
        assert!(ps.read(bad).is_err());
        let missing_gen = PackLoc {
            gen: 9,
            offset: 0,
            len: 1,
        };
        assert!(ps.read(missing_gen).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn new_gen_and_retire() {
        let dir = tmpdir("gens");
        let mut ps = PackSet::open(&dir).unwrap();
        let old = ps.append(b"old-blob").unwrap();
        let gen2 = ps.start_new_gen().unwrap();
        assert_eq!(gen2, 2);
        let new = ps.append(b"new-blob").unwrap();
        assert_eq!(new.gen, 2);
        // Old gen still readable until retired.
        assert_eq!(&*ps.read(old).unwrap(), b"old-blob");
        ps.retire_except(&[2]).unwrap();
        assert!(ps.read(old).is_err());
        assert_eq!(&*ps.read(new).unwrap(), b"new-blob");
        assert_eq!(ps.generations(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn index_log_roundtrip_and_torn_tail() {
        let dir = tmpdir("log");
        std::fs::create_dir_all(&dir).unwrap();
        let put = LogRecord::Put {
            key: "user-1".into(),
            loc: PackLoc {
                gen: 1,
                offset: 128,
                len: 64,
            },
            hash: 0xdeadbeef,
            version: 3,
        };
        let rb = LogRecord::Rollback {
            key: "user-1".into(),
        };
        append_index_log(&dir, &put, None).unwrap();
        append_index_log(&dir, &rb, None).unwrap();
        let (recs, torn) = read_index_log(&dir).unwrap();
        assert_eq!(recs, vec![put.clone(), rb.clone()]);
        assert!(!torn);

        // Simulate a crash mid-append: a torn half-record at the tail.
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join("index.log"))
            .unwrap();
        f.write_all(b"put user-2 1 99").unwrap();
        let (recs, torn) = read_index_log(&dir).unwrap();
        assert_eq!(recs.len(), 2);
        assert!(torn);

        // Compaction rewrite drops the torn tail for good.
        rewrite_index_log(&dir, &recs, None).unwrap();
        let (recs2, torn2) = read_index_log(&dir).unwrap();
        assert_eq!(recs2, recs);
        assert!(!torn2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_enospc_append_writes_nothing() {
        let dir = tmpdir("fault_enospc");
        let mut ps = PackSet::open(&dir).unwrap();
        let inj = Arc::new(StoreFaultInjector::new());
        ps.set_faults(Some(inj.clone()));
        inj.arm_enospc_appends(1);
        let err = ps.append(b"doomed").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(ps.total_bytes(), 0);
        // The very next append succeeds at offset 0.
        let loc = ps.append(b"fine").unwrap();
        assert_eq!(loc.offset, 0);
        assert_eq!(&*ps.read(loc).unwrap(), b"fine");
        assert_eq!(inj.injected(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_short_write_advances_len_by_bytes_written() {
        let dir = tmpdir("fault_short");
        let mut ps = PackSet::open(&dir).unwrap();
        let inj = Arc::new(StoreFaultInjector::new());
        ps.set_faults(Some(inj.clone()));
        inj.arm_short_writes(1);
        let err = ps.append(b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        // Half the blob landed; the orphaned prefix stays addressable.
        assert_eq!(ps.total_bytes(), 5);
        // A follow-up append must not overlap the torn prefix...
        let loc = ps.append(b"next").unwrap();
        assert_eq!(loc.offset, 5);
        assert_eq!(&*ps.read(loc).unwrap(), b"next");
        // ...and the file length agrees with the tracked length, so a
        // reopen sees the same layout.
        drop(ps);
        let ps = PackSet::open(&dir).unwrap();
        assert_eq!(ps.total_bytes(), 9);
        assert_eq!(&*ps.read(loc).unwrap(), b"next");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_fsync_failure_fails_sync_and_log_append() {
        let dir = tmpdir("fault_fsync");
        let mut ps = PackSet::open(&dir).unwrap();
        let inj = Arc::new(StoreFaultInjector::new());
        ps.set_faults(Some(inj.clone()));
        inj.arm_fsync_failures(2);
        assert!(ps.sync_active().is_err());
        let rec = LogRecord::Rollback { key: "k".into() };
        assert!(append_index_log(&dir, &rec, Some(&inj)).is_err());
        // The failed log append left no record behind.
        let (recs, torn) = read_index_log(&dir).unwrap();
        assert!(recs.is_empty());
        assert!(!torn);
        // Fully consumed: both paths work again.
        ps.sync_active().unwrap();
        append_index_log(&dir, &rec, Some(&inj)).unwrap();
        assert_eq!(read_index_log(&dir).unwrap().0.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_torn_rename_keeps_old_log_authoritative() {
        let dir = tmpdir("fault_torn_rename");
        std::fs::create_dir_all(&dir).unwrap();
        let old = LogRecord::Rollback { key: "old".into() };
        append_index_log(&dir, &old, None).unwrap();
        let inj = StoreFaultInjector::new();
        inj.arm_torn_renames(1);
        let new = vec![LogRecord::Rollback { key: "new".into() }];
        assert!(rewrite_index_log(&dir, &new, Some(&inj)).is_err());
        // The crash window: temp written, rename lost, old log intact.
        let (recs, _) = read_index_log(&dir).unwrap();
        assert_eq!(recs, vec![old]);
        assert!(dir.join("index.log.tmp").exists());
        // Retried rewrite commits and the temp is consumed by the rename.
        rewrite_index_log(&dir, &new, Some(&inj)).unwrap();
        assert_eq!(read_index_log(&dir).unwrap().0, new);
        assert!(!dir.join("index.log.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_log_is_empty() {
        let dir = tmpdir("nolog");
        std::fs::create_dir_all(&dir).unwrap();
        let (recs, torn) = read_index_log(&dir).unwrap();
        assert!(recs.is_empty());
        assert!(!torn);
        std::fs::remove_dir_all(&dir).ok();
    }
}
