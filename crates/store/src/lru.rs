//! Byte-budgeted LRU cache of decoded models.
//!
//! A store shard keeps the decoded [`reghd_serve::ServedModel`]s it
//! recently resolved in one of these; everything else stays cold in the
//! packfiles. Implemented as a slab-backed intrusive doubly-linked list —
//! `get`, `insert`, and `remove` are O(1), which matters when the hot set
//! is tens of thousands of entries and every serving request passes
//! through here.
//!
//! Eviction is by **bytes**, not entry count: each entry is charged the
//! cost supplied at insert time (the bundle's
//! [`reghd_serve::ModelBundle::approx_mem_bytes`]), and inserts evict from
//! the cold end until the cache is back under budget. The most recently
//! inserted entry is never evicted by its own insert, so a single model
//! larger than the whole budget still serves (and is evicted by the next
//! insert instead).

use std::collections::HashMap;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Entry<V> {
    key: String,
    /// `Some` while the entry is resident; taken (dropped) the moment the
    /// slot is evicted or removed, so a decoded model never lingers in a
    /// free slab slot uncounted by the byte budget.
    value: Option<V>,
    bytes: usize,
    prev: usize,
    next: usize,
}

/// Running counters for one cache (monotonic over the cache's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LruStats {
    /// Lookups that found a resident entry.
    pub hits: u64,
    /// Lookups that missed (the caller then pays a cold decode).
    pub misses: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
}

/// Byte-budgeted LRU map from key to decoded model.
#[derive(Debug)]
pub struct LruCache<V> {
    map: HashMap<String, usize>,
    slab: Vec<Entry<V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    budget: usize,
    resident: usize,
    stats: LruStats,
}

impl<V> LruCache<V> {
    /// Creates a cache that evicts past `budget_bytes` of charged cost.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            budget: budget_bytes,
            resident: 0,
            stats: LruStats::default(),
        }
    }

    /// Unlinks slot `i` from the recency list (it stays in the slab).
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Links slot `i` at the hot end.
    fn push_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks `key` up, promoting a hit to most-recent.
    pub fn get(&mut self, key: &str) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(i) => {
                self.stats.hits += 1;
                if self.head != i {
                    self.unlink(i);
                    self.push_front(i);
                }
                self.slab[i].value.as_ref()
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Peeks without touching recency or counters (list/iteration paths).
    pub fn peek(&self, key: &str) -> Option<&V> {
        self.map.get(key).and_then(|&i| self.slab[i].value.as_ref())
    }

    /// Inserts (or replaces) `key` charged at `bytes`, then evicts cold
    /// entries until the cache is under budget — never the entry just
    /// inserted. Returns how many entries were evicted.
    pub fn insert(&mut self, key: &str, value: V, bytes: usize) -> usize {
        if let Some(i) = self.map.get(key).copied() {
            self.resident = self.resident - self.slab[i].bytes + bytes;
            self.slab[i].value = Some(value);
            self.slab[i].bytes = bytes;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
        } else {
            let entry = Entry {
                key: key.to_string(),
                value: Some(value),
                bytes,
                prev: NIL,
                next: NIL,
            };
            let i = match self.free.pop() {
                Some(i) => {
                    self.slab[i] = entry;
                    i
                }
                None => {
                    self.slab.push(entry);
                    self.slab.len() - 1
                }
            };
            self.map.insert(key.to_string(), i);
            self.push_front(i);
            self.resident += bytes;
        }
        let mut evicted = 0;
        while self.resident > self.budget && self.tail != self.head {
            let victim = self.tail;
            let key = std::mem::take(&mut self.slab[victim].key);
            self.map.remove(&key);
            self.unlink(victim);
            self.resident -= self.slab[victim].bytes;
            self.slab[victim].bytes = 0;
            self.slab[victim].value = None;
            self.free.push(victim);
            evicted += 1;
        }
        self.stats.evictions += evicted as u64;
        evicted
    }

    /// Drops `key` if resident (a publish invalidates the old decode),
    /// handing the owned value back to the caller.
    pub fn remove(&mut self, key: &str) -> Option<V> {
        let i = self.map.remove(key)?;
        self.unlink(i);
        self.resident -= self.slab[i].bytes;
        self.slab[i].bytes = 0;
        self.slab[i].key = String::new();
        self.free.push(i);
        self.slab[i].value.take()
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total charged bytes currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.resident
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// Lifetime counters.
    pub fn stats(&self) -> LruStats {
        self.stats
    }

    /// Visits every resident value, hot end first, without touching
    /// recency.
    pub fn for_each(&self, mut f: impl FnMut(&str, &V)) {
        let mut i = self.head;
        while i != NIL {
            let e = &self.slab[i];
            f(&e.key, e.value.as_ref().expect("linked entry is resident"));
            i = e.next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys_hot_to_cold(c: &LruCache<u32>) -> Vec<String> {
        let mut out = Vec::new();
        c.for_each(|k, _| out.push(k.to_string()));
        out
    }

    #[test]
    fn evicts_cold_entries_past_budget() {
        let mut c = LruCache::new(100);
        assert_eq!(c.insert("a", 1, 40), 0);
        assert_eq!(c.insert("b", 2, 40), 0);
        // 120 > 100: the coldest entry (a) goes.
        assert_eq!(c.insert("c", 3, 40), 1);
        assert_eq!(c.len(), 2);
        assert!(c.peek("a").is_none());
        assert_eq!(c.resident_bytes(), 80);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn get_promotes_and_counts() {
        let mut c = LruCache::new(100);
        c.insert("a", 1, 40);
        c.insert("b", 2, 40);
        assert_eq!(c.get("a"), Some(&1)); // a is now hot
        assert_eq!(c.get("nope"), None);
        c.insert("c", 3, 40); // evicts b, not a
        assert!(c.peek("a").is_some());
        assert!(c.peek("b").is_none());
        assert_eq!(
            c.stats(),
            LruStats {
                hits: 1,
                misses: 1,
                evictions: 1
            }
        );
        assert_eq!(keys_hot_to_cold(&c), ["c", "a"]);
    }

    #[test]
    fn oversized_single_entry_survives_its_own_insert() {
        let mut c = LruCache::new(10);
        assert_eq!(c.insert("big", 1, 1000), 0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.resident_bytes(), 1000);
        // The next insert evicts it.
        c.insert("b", 2, 4);
        assert!(c.peek("big").is_none());
        assert_eq!(c.resident_bytes(), 4);
    }

    #[test]
    fn replace_updates_cost_in_place() {
        let mut c = LruCache::new(100);
        c.insert("a", 1, 30);
        c.insert("a", 2, 50);
        assert_eq!(c.len(), 1);
        assert_eq!(c.resident_bytes(), 50);
        assert_eq!(c.peek("a"), Some(&2));
    }

    #[test]
    fn remove_frees_budget_and_slot() {
        let mut c = LruCache::new(100);
        c.insert("a", 1, 60);
        assert_eq!(c.remove("a"), Some(1));
        assert_eq!(c.remove("a"), None);
        assert_eq!(c.resident_bytes(), 0);
        // Freed slot is reused.
        c.insert("b", 2, 10);
        c.insert("c", 3, 10);
        assert_eq!(c.len(), 2);
        assert_eq!(keys_hot_to_cold(&c), ["c", "b"]);
    }

    #[test]
    fn eviction_drops_the_value_immediately() {
        use std::sync::Arc;
        let mut c = LruCache::new(100);
        let a = Arc::new(7u32);
        let b = Arc::new(8u32);
        c.insert("a", a.clone(), 60);
        c.insert("b", b.clone(), 60); // evicts a
        assert!(c.peek("a").is_none());
        assert_eq!(
            Arc::strong_count(&a),
            1,
            "evicted value must be freed, not parked in a free slot"
        );
        assert_eq!(Arc::strong_count(&b), 2);
        // remove() hands the owned value back instead of cloning it.
        let got = c.remove("b").unwrap();
        assert!(Arc::ptr_eq(&got, &b));
        drop(got);
        assert_eq!(Arc::strong_count(&b), 1);
    }

    #[test]
    fn heavy_churn_stays_consistent() {
        let mut c = LruCache::new(500);
        for i in 0..1000u32 {
            c.insert(&format!("k{i}"), i, 10 + (i as usize % 7));
            if i % 3 == 0 {
                c.get(&format!("k{}", i / 2));
            }
            if i % 11 == 0 {
                c.remove(&format!("k{}", i.saturating_sub(5)));
            }
            assert!(c.resident_bytes() <= 500 + 16, "over budget at {i}");
        }
        let mut walked = 0;
        c.for_each(|_, _| walked += 1);
        assert_eq!(walked, c.len());
    }
}
