//! Read-only memory mapping without external crates.
//!
//! The workspace is `std`-only, and `std` exposes no `mmap`, so on Linux
//! the two syscalls this needs (`mmap`, `munmap`) are issued directly via
//! inline assembly — the only `unsafe` in the crate, confined to this
//! module. Platforms without that fast path fall back to reading the file
//! into an owned buffer: the [`MappedFile`] API (a `&[u8]` view of a file)
//! is identical either way, only the residency behaviour differs (mapped
//! pages are demand-faulted and evictable; the fallback is resident heap).
#![allow(unsafe_code)]

use std::fs::File;
use std::io;

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use std::io;

    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(
        nr: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(
        nr: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            in("x8") nr,
            inlateout("x0") a => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "x86_64")]
    const SYS_MMAP: usize = 9;
    #[cfg(target_arch = "x86_64")]
    const SYS_MUNMAP: usize = 11;
    #[cfg(target_arch = "aarch64")]
    const SYS_MMAP: usize = 222;
    #[cfg(target_arch = "aarch64")]
    const SYS_MUNMAP: usize = 215;

    /// Maps `len` bytes of `fd` read-only and private. `len` must be
    /// non-zero (the kernel rejects zero-length maps).
    pub fn map_readonly(fd: i32, len: usize) -> io::Result<*const u8> {
        let ret = unsafe {
            syscall6(
                SYS_MMAP,
                0,
                len,
                PROT_READ,
                MAP_PRIVATE,
                fd as isize as usize,
                0,
            )
        };
        if (-4095..0).contains(&ret) {
            return Err(io::Error::from_raw_os_error(-ret as i32));
        }
        Ok(ret as usize as *const u8)
    }

    /// Unmaps a region previously returned by [`map_readonly`].
    pub fn unmap(ptr: *const u8, len: usize) {
        // Failure here leaks address space at worst; nothing to report.
        unsafe {
            let _ = syscall6(SYS_MUNMAP, ptr as usize, len, 0, 0, 0, 0);
        }
    }
}

/// A read-only byte view of a file: a true memory map where the platform
/// fast path exists, an owned copy elsewhere. The view is a snapshot of
/// the file's length at map time — bytes appended afterwards are outside
/// it and must be read through the file handle (the packfile layer does
/// exactly that for recent appends).
pub enum MappedFile {
    /// Demand-paged kernel mapping (Linux x86_64/aarch64).
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Mapped {
        /// Page-aligned base address returned by `mmap`.
        ptr: *const u8,
        /// Mapped length in bytes.
        len: usize,
    },
    /// Owned in-heap copy (fallback platforms, and all zero-length files).
    Owned(Vec<u8>),
}

// The mapping is read-only and private; the raw pointer is only ever
// dereferenced through the shared slice view.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
unsafe impl Send for MappedFile {}
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
unsafe impl Sync for MappedFile {}

impl MappedFile {
    /// Maps the first `len` bytes of `file`. `len` is the caller's
    /// snapshot of the file length (the packfile layer tracks it exactly);
    /// zero-length views never invoke the kernel.
    pub fn map(file: &File, len: usize) -> io::Result<Self> {
        if len == 0 {
            return Ok(Self::Owned(Vec::new()));
        }
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        {
            use std::os::fd::AsRawFd;
            let ptr = sys::map_readonly(file.as_raw_fd(), len)?;
            Ok(Self::Mapped { ptr, len })
        }
        #[cfg(not(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )))]
        {
            use std::io::Read;
            let mut buf = vec![0u8; len];
            let mut f = file.try_clone()?;
            std::io::Seek::seek(&mut f, std::io::SeekFrom::Start(0))?;
            f.read_exact(&mut buf)?;
            Ok(Self::Owned(buf))
        }
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Self::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Self::Owned(v) => v,
        }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this view is a true kernel mapping (false on fallback
    /// platforms) — surfaced in store stats so operators can tell which
    /// residency regime they are in.
    pub fn is_kernel_mapping(&self) -> bool {
        match self {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Self::Mapped { .. } => true,
            Self::Owned(_) => false,
        }
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        match self {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Self::Mapped { ptr, len } => sys::unmap(*ptr, *len),
            Self::Owned(_) => {}
        }
    }
}

impl std::fmt::Debug for MappedFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedFile")
            .field("len", &self.len())
            .field("kernel", &self.is_kernel_mapping())
            .finish()
    }
}

impl std::ops::Deref for MappedFile {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(name);
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    #[test]
    fn maps_file_contents() {
        let path = tmp("reghd_store_mmap_basic", b"hello packfile");
        let f = File::open(&path).unwrap();
        let map = MappedFile::map(&f, 14).unwrap();
        assert_eq!(&*map, b"hello packfile");
        assert_eq!(map.len(), 14);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_empty() {
        let path = tmp("reghd_store_mmap_empty", b"");
        let f = File::open(&path).unwrap();
        let map = MappedFile::map(&f, 0).unwrap();
        assert!(map.is_empty());
        assert!(!map.is_kernel_mapping());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_ignores_later_appends() {
        let path = tmp("reghd_store_mmap_snapshot", b"0123456789");
        let f = File::open(&path).unwrap();
        let map = MappedFile::map(&f, 10).unwrap();
        // Append after mapping: the 10-byte view must be unaffected.
        let mut w = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        w.write_all(b"MORE").unwrap();
        assert_eq!(map.len(), 10);
        assert_eq!(&map[..4], b"0123");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kernel_mapping_on_linux() {
        let path = tmp("reghd_store_mmap_kernel", &vec![7u8; 8192]);
        let f = File::open(&path).unwrap();
        let map = MappedFile::map(&f, 8192).unwrap();
        if cfg!(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )) {
            assert!(map.is_kernel_mapping());
        }
        assert!(map.iter().all(|&b| b == 7));
        std::fs::remove_file(&path).ok();
    }
}
