//! Delta publication: ship only the hypervectors that changed.
//!
//! A RegHD model is `k` cluster hypervectors, `k` model hypervectors, an
//! optional centre vector, an intercept, scalers, and a canary section.
//! Streaming training between two publishes usually touches a *few*
//! clusters (the ones recent samples routed to), so republishing the full
//! bundle for every checkpoint moves mostly unchanged bytes. A
//! [`ModelDelta`] carries the changed vectors only:
//!
//! ```text
//! magic "RGDL" | version u16 = 1
//! base_hash u64 | base_version u64 | expected_hash u64
//! intercept f32 | dim u64 | k u64
//! changed clusters: count u32, then per entry idx u32 | dim × f32
//! changed models:   count u32, then per entry idx u32 | dim × f32
//! center  flag u8 (0 unchanged, 1 replaced → dim × f32)
//! scalers flag u8 (0 unchanged, 1 replaced → n u64 | means | stds | tm | ts)
//! canary  flag u8 (0 unchanged, 1 replaced → rows u64 | width u64 | rows×width f32 | rows f32)
//! crc32 over everything after the version field
//! ```
//!
//! **Bit-exactness is enforced, not hoped for**: `expected_hash` is the
//! FNV-1a of the full bundle bytes the trainer would have published, and
//! [`ModelDelta::apply`] re-serialises the patched bundle and refuses to
//! return bytes that hash differently. A base+delta load is therefore
//! byte-identical to a full-bundle load — same predictions in every
//! cluster/prediction mode, same canary replay, same artefact hash in
//! `list` output.

use crate::{fnv1a, StoreError};
use encoding::EncoderSpec;
use reghd::RegHdRegressor;
use reghd_serve::bundle::ModelBundle;

const MAGIC: &[u8; 4] = b"RGDL";
const VERSION: u16 = 1;

/// A sparse model update from one published version to the next.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelDelta {
    /// FNV-1a of the full bundle bytes this delta applies on top of.
    pub base_hash: u64,
    /// Store version the base was published as.
    pub base_version: u64,
    /// FNV-1a the patched full bundle bytes must hash to.
    pub expected_hash: u64,
    intercept: f32,
    dim: usize,
    k: usize,
    clusters: Vec<(u32, Vec<f32>)>,
    models: Vec<(u32, Vec<f32>)>,
    center: Option<Vec<f32>>,
    scalers: Option<(Vec<f32>, Vec<f32>, f32, f32)>,
    canary: Option<(Vec<Vec<f32>>, Vec<f32>)>,
}

fn bits_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

impl ModelDelta {
    /// Diffs two full bundle images. Returns `None` when a delta cannot
    /// represent the change (different config, feature width, or model
    /// shape) — the caller publishes the full bundle instead.
    ///
    /// # Errors
    ///
    /// Either image failing to parse (these are trusted, already-validated
    /// publish artefacts, so a parse failure is a caller bug worth
    /// surfacing rather than silently full-publishing).
    pub fn compute(
        base_bytes: &[u8],
        base_version: u64,
        new_bytes: &[u8],
    ) -> Result<Option<ModelDelta>, StoreError> {
        let base = ModelBundle::from_bytes(base_bytes).map_err(StoreError::Bundle)?;
        let new = ModelBundle::from_bytes(new_bytes).map_err(StoreError::Bundle)?;
        let (bcfg, ncfg) = (base.model().config(), new.model().config());
        if bcfg != ncfg || base.num_features() != new.num_features() {
            return Ok(None);
        }
        let (bc, nc) = (
            base.model().clusters().integer_clusters(),
            new.model().clusters().integer_clusters(),
        );
        let (bm, nm) = (
            base.model().models().integer_models(),
            new.model().models().integer_models(),
        );
        if bc.len() != nc.len() || bm.len() != nm.len() {
            return Ok(None);
        }
        let center = match (base.model().center(), new.model().center()) {
            (None, None) => None,
            (Some(b), Some(n)) if bits_eq(b.as_slice(), n.as_slice()) => None,
            (Some(_), Some(n)) => Some(n.as_slice().to_vec()),
            // A centre appearing or vanishing means a different
            // normalisation setup — not a delta.
            _ => return Ok(None),
        };
        let clusters: Vec<(u32, Vec<f32>)> = bc
            .iter()
            .zip(nc)
            .enumerate()
            .filter(|(_, (b, n))| !bits_eq(b.as_slice(), n.as_slice()))
            .map(|(i, (_, n))| (i as u32, n.as_slice().to_vec()))
            .collect();
        let models: Vec<(u32, Vec<f32>)> = bm
            .iter()
            .zip(nm)
            .enumerate()
            .filter(|(_, (b, n))| !bits_eq(b.as_slice(), n.as_slice()))
            .map(|(i, (_, n))| (i as u32, n.as_slice().to_vec()))
            .collect();
        let scalers_same = bits_eq(base.feat_means(), new.feat_means())
            && bits_eq(base.feat_stds(), new.feat_stds())
            && base.target_mean().to_bits() == new.target_mean().to_bits()
            && base.target_std().to_bits() == new.target_std().to_bits();
        let scalers = (!scalers_same).then(|| {
            (
                new.feat_means().to_vec(),
                new.feat_stds().to_vec(),
                new.target_mean(),
                new.target_std(),
            )
        });
        let canary_same = base.canary_rows().len() == new.canary_rows().len()
            && base
                .canary_rows()
                .iter()
                .zip(new.canary_rows())
                .all(|(b, n)| bits_eq(b, n))
            && bits_eq(base.canary_preds(), new.canary_preds());
        let canary =
            (!canary_same).then(|| (new.canary_rows().to_vec(), new.canary_preds().to_vec()));
        Ok(Some(ModelDelta {
            base_hash: fnv1a(base_bytes),
            base_version,
            expected_hash: fnv1a(new_bytes),
            intercept: new.model().intercept(),
            dim: ncfg.dim,
            k: ncfg.models,
            clusters,
            models,
            center,
            scalers,
            canary,
        }))
    }

    /// Number of changed cluster + model hypervectors the delta carries.
    pub fn changed_vectors(&self) -> usize {
        self.clusters.len() + self.models.len()
    }

    /// Applies the delta to its base image, returning the patched **full**
    /// bundle bytes — verified to hash to [`ModelDelta::expected_hash`],
    /// i.e. bit-identical to the full bundle the sender diffed against.
    ///
    /// # Errors
    ///
    /// Base hash mismatch (delta applied to the wrong version), malformed
    /// base, out-of-range patch indices, or a result-hash mismatch.
    pub fn apply(&self, base_bytes: &[u8]) -> Result<Vec<u8>, StoreError> {
        let got = fnv1a(base_bytes);
        if got != self.base_hash {
            return Err(StoreError::Delta(format!(
                "base hash mismatch: delta expects {:016x}, image is {got:016x}",
                self.base_hash
            )));
        }
        let base = ModelBundle::from_bytes(base_bytes).map_err(StoreError::Corrupt)?;
        let cfg = base.model().config().clone();
        if cfg.dim != self.dim || cfg.models != self.k {
            return Err(StoreError::Delta(format!(
                "shape mismatch: delta is {}x{}, base is {}x{}",
                self.k, self.dim, cfg.models, cfg.dim
            )));
        }
        let mut clusters = base.model().clusters().integer_clusters().to_vec();
        let mut models = base.model().models().integer_models().to_vec();
        for (idx, data) in &self.clusters {
            let slot = clusters
                .get_mut(*idx as usize)
                .ok_or_else(|| StoreError::Delta(format!("cluster index {idx} out of range")))?;
            *slot = hdc::RealHv::from_vec(data.clone());
        }
        for (idx, data) in &self.models {
            let slot = models
                .get_mut(*idx as usize)
                .ok_or_else(|| StoreError::Delta(format!("model index {idx} out of range")))?;
            *slot = hdc::RealHv::from_vec(data.clone());
        }
        let center = match &self.center {
            Some(c) => Some(hdc::RealHv::from_vec(c.clone())),
            None => base.model().center().cloned(),
        };
        let (feat_means, feat_stds, target_mean, target_std) = match &self.scalers {
            Some((m, s, tm, ts)) => (m.clone(), s.clone(), *tm, *ts),
            None => (
                base.feat_means().to_vec(),
                base.feat_stds().to_vec(),
                base.target_mean(),
                base.target_std(),
            ),
        };
        let (canary_rows, canary_preds) = match &self.canary {
            Some((r, p)) => (r.clone(), p.clone()),
            None => (base.canary_rows().to_vec(), base.canary_preds().to_vec()),
        };
        let spec = EncoderSpec::Nonlinear {
            input_dim: feat_means.len(),
            dim: cfg.dim,
            seed: cfg.seed ^ 0xC11,
        };
        let model =
            RegHdRegressor::from_parts(cfg, spec.build(), clusters, models, center, self.intercept);
        let patched = ModelBundle::from_parts_with_canary(
            model,
            feat_means,
            feat_stds,
            target_mean,
            target_std,
            canary_rows,
            canary_preds,
        )
        .map_err(StoreError::Delta)?;
        let bytes = patched.to_bytes().map_err(StoreError::Delta)?;
        let got = fnv1a(&bytes);
        if got != self.expected_hash {
            return Err(StoreError::Delta(format!(
                "patched bundle hashes {got:016x}, delta promised {:016x}",
                self.expected_hash
            )));
        }
        Ok(bytes)
    }

    /// Serialises the delta (see the module docs for the layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body: Vec<u8> = Vec::new();
        body.extend_from_slice(&self.base_hash.to_le_bytes());
        body.extend_from_slice(&self.base_version.to_le_bytes());
        body.extend_from_slice(&self.expected_hash.to_le_bytes());
        body.extend_from_slice(&self.intercept.to_le_bytes());
        body.extend_from_slice(&(self.dim as u64).to_le_bytes());
        body.extend_from_slice(&(self.k as u64).to_le_bytes());
        for group in [&self.clusters, &self.models] {
            body.extend_from_slice(&(group.len() as u32).to_le_bytes());
            for (idx, data) in group {
                body.extend_from_slice(&idx.to_le_bytes());
                for &v in data {
                    body.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        match &self.center {
            None => body.push(0),
            Some(c) => {
                body.push(1);
                for &v in c {
                    body.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        match &self.scalers {
            None => body.push(0),
            Some((m, s, tm, ts)) => {
                body.push(1);
                body.extend_from_slice(&(m.len() as u64).to_le_bytes());
                for &v in m.iter().chain(s) {
                    body.extend_from_slice(&v.to_le_bytes());
                }
                body.extend_from_slice(&tm.to_le_bytes());
                body.extend_from_slice(&ts.to_le_bytes());
            }
        }
        match &self.canary {
            None => body.push(0),
            Some((rows, preds)) => {
                body.push(1);
                body.extend_from_slice(&(rows.len() as u64).to_le_bytes());
                let width = rows.first().map_or(0, Vec::len) as u64;
                body.extend_from_slice(&width.to_le_bytes());
                for row in rows {
                    for &v in row {
                        body.extend_from_slice(&v.to_le_bytes());
                    }
                }
                for &p in preds {
                    body.extend_from_slice(&p.to_le_bytes());
                }
            }
        }
        let mut out = Vec::with_capacity(6 + body.len() + 4);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&reghd_serve::bundle::crc32(&body).to_le_bytes());
        out
    }

    /// Parses a serialised delta, verifying its trailing checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        let mut r: &[u8] = bytes;
        let mut magic = [0u8; 4];
        take(&mut r, &mut magic)?;
        if &magic != MAGIC {
            return Err(StoreError::Delta("not a model delta".to_string()));
        }
        let v = r_u16(&mut r)?;
        if v != VERSION {
            return Err(StoreError::Delta(format!("unsupported delta version {v}")));
        }
        if r.len() < 4 {
            return Err(StoreError::Delta("truncated delta".to_string()));
        }
        let (body, crc_bytes) = r.split_at(r.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4-byte split"));
        let computed = reghd_serve::bundle::crc32(body);
        if stored != computed {
            return Err(StoreError::Delta(format!(
                "delta checksum mismatch (stored {stored:08x}, computed {computed:08x})"
            )));
        }
        let mut r: &[u8] = body;
        let base_hash = r_u64(&mut r)?;
        let base_version = r_u64(&mut r)?;
        let expected_hash = r_u64(&mut r)?;
        let intercept = r_f32(&mut r)?;
        let dim = r_u64(&mut r)? as usize;
        let k = r_u64(&mut r)? as usize;
        if dim == 0 || dim > 1 << 24 || k == 0 || k > 1 << 16 {
            return Err(StoreError::Delta(format!("implausible shape {k}x{dim}")));
        }
        let mut groups = Vec::with_capacity(2);
        for _ in 0..2 {
            let count = r_u32(&mut r)? as usize;
            if count > 2 * k {
                return Err(StoreError::Delta(format!(
                    "implausible changed-vector count {count}"
                )));
            }
            let mut group = Vec::with_capacity(count);
            for _ in 0..count {
                let idx = r_u32(&mut r)?;
                let mut data = Vec::with_capacity(dim);
                for _ in 0..dim {
                    data.push(r_f32(&mut r)?);
                }
                group.push((idx, data));
            }
            groups.push(group);
        }
        let models = groups.pop().expect("two groups read");
        let clusters = groups.pop().expect("two groups read");
        let center = match r_u8(&mut r)? {
            0 => None,
            1 => {
                let mut c = Vec::with_capacity(dim);
                for _ in 0..dim {
                    c.push(r_f32(&mut r)?);
                }
                Some(c)
            }
            f => return Err(StoreError::Delta(format!("bad center flag {f}"))),
        };
        let scalers = match r_u8(&mut r)? {
            0 => None,
            1 => {
                let n = r_u64(&mut r)? as usize;
                if n > 1 << 20 {
                    return Err(StoreError::Delta(format!("implausible feature count {n}")));
                }
                let mut m = Vec::with_capacity(n);
                for _ in 0..n {
                    m.push(r_f32(&mut r)?);
                }
                let mut s = Vec::with_capacity(n);
                for _ in 0..n {
                    s.push(r_f32(&mut r)?);
                }
                let tm = r_f32(&mut r)?;
                let ts = r_f32(&mut r)?;
                Some((m, s, tm, ts))
            }
            f => return Err(StoreError::Delta(format!("bad scalers flag {f}"))),
        };
        let canary = match r_u8(&mut r)? {
            0 => None,
            1 => {
                let rows = r_u64(&mut r)? as usize;
                let width = r_u64(&mut r)? as usize;
                if rows > 64 || width > 1 << 20 {
                    return Err(StoreError::Delta(format!(
                        "implausible canary shape {rows}x{width}"
                    )));
                }
                let mut rs = Vec::with_capacity(rows);
                for _ in 0..rows {
                    let mut row = Vec::with_capacity(width);
                    for _ in 0..width {
                        row.push(r_f32(&mut r)?);
                    }
                    rs.push(row);
                }
                let mut ps = Vec::with_capacity(rows);
                for _ in 0..rows {
                    ps.push(r_f32(&mut r)?);
                }
                Some((rs, ps))
            }
            f => return Err(StoreError::Delta(format!("bad canary flag {f}"))),
        };
        if !r.is_empty() {
            return Err(StoreError::Delta(format!(
                "{} trailing bytes in delta",
                r.len()
            )));
        }
        Ok(ModelDelta {
            base_hash,
            base_version,
            expected_hash,
            intercept,
            dim,
            k,
            clusters,
            models,
            center,
            scalers,
            canary,
        })
    }
}

fn take(r: &mut &[u8], buf: &mut [u8]) -> Result<(), StoreError> {
    if r.len() < buf.len() {
        return Err(StoreError::Delta("truncated delta".to_string()));
    }
    buf.copy_from_slice(&r[..buf.len()]);
    *r = &r[buf.len()..];
    Ok(())
}

fn r_u8(r: &mut &[u8]) -> Result<u8, StoreError> {
    let mut b = [0u8; 1];
    take(r, &mut b)?;
    Ok(b[0])
}

fn r_u16(r: &mut &[u8]) -> Result<u16, StoreError> {
    let mut b = [0u8; 2];
    take(r, &mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn r_u32(r: &mut &[u8]) -> Result<u32, StoreError> {
    let mut b = [0u8; 4];
    take(r, &mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn r_u64(r: &mut &[u8]) -> Result<u64, StoreError> {
    let mut b = [0u8; 8];
    take(r, &mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn r_f32(r: &mut &[u8]) -> Result<f32, StoreError> {
    let mut b = [0u8; 4];
    take(r, &mut b)?;
    Ok(f32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use reghd::config::{ClusterMode, PredictionMode, RegHdConfig};
    use reghd::Regressor;

    /// Trains a small bundle in the given quantisation modes.
    fn trained(cm: ClusterMode, pm: PredictionMode, seed: u64) -> ModelBundle {
        let rows: Vec<Vec<f32>> = (0..60)
            .map(|i| vec![i as f32 / 30.0, (i % 5) as f32])
            .collect();
        let ys: Vec<f32> = rows.iter().map(|r| 2.0 * r[0] - r[1]).collect();
        let spec = EncoderSpec::Nonlinear {
            input_dim: 2,
            dim: 128,
            seed: seed ^ 0xC11,
        };
        let cfg = RegHdConfig::builder()
            .dim(128)
            .models(2)
            .seed(seed)
            .max_epochs(4)
            .cluster_mode(cm)
            .prediction_mode(pm)
            .build();
        let mut model = RegHdRegressor::new(cfg, spec.build());
        model.fit(&rows, &ys);
        ModelBundle::from_trained(model, vec![0.0; 2], vec![1.0; 2], 0.0, 1.0, &rows).unwrap()
    }

    /// A same-config "next training step": one cluster and one model
    /// vector perturbed, canary recaptured.
    fn perturbed(base: &ModelBundle) -> ModelBundle {
        let cfg = base.model().config().clone();
        let mut clusters = base.model().clusters().integer_clusters().to_vec();
        let mut models = base.model().models().integer_models().to_vec();
        let mut c0: Vec<f32> = clusters[0].as_slice().to_vec();
        for v in &mut c0 {
            *v += 0.25;
        }
        clusters[0] = hdc::RealHv::from_vec(c0);
        let mut m1: Vec<f32> = models[1].as_slice().to_vec();
        for v in &mut m1 {
            *v -= 0.125;
        }
        models[1] = hdc::RealHv::from_vec(m1);
        let spec = EncoderSpec::Nonlinear {
            input_dim: 2,
            dim: cfg.dim,
            seed: cfg.seed ^ 0xC11,
        };
        let model = RegHdRegressor::from_parts(
            cfg,
            spec.build(),
            clusters,
            models,
            base.model().center().cloned(),
            base.model().intercept() + 0.5,
        );
        let rows = base.canary_rows().to_vec();
        ModelBundle::from_trained(model, vec![0.0; 2], vec![1.0; 2], 0.0, 1.0, &rows).unwrap()
    }

    #[test]
    fn roundtrips_bit_exact_across_all_mode_combinations() {
        let probe: Vec<Vec<f32>> = (0..8).map(|i| vec![i as f32 / 4.0, 1.0]).collect();
        let cluster_modes = [
            ClusterMode::Integer,
            ClusterMode::FrameworkBinary,
            ClusterMode::NaiveBinary,
        ];
        for (ci, cm) in cluster_modes.into_iter().enumerate() {
            for (pi, pm) in PredictionMode::ALL.into_iter().enumerate() {
                let seed = 100 + (ci * 4 + pi) as u64;
                let base = trained(cm, pm, seed);
                let new = perturbed(&base);
                let (base_bytes, new_bytes) = (base.to_bytes().unwrap(), new.to_bytes().unwrap());
                let delta = ModelDelta::compute(&base_bytes, 1, &new_bytes)
                    .unwrap()
                    .expect("same config must be delta-able");
                // Sparse: only the two perturbed vectors travel.
                assert!(
                    delta.changed_vectors() <= 4,
                    "{cm:?}/{pm:?}: {} changed",
                    delta.changed_vectors()
                );
                // Wire roundtrip, then application — byte-identical to the
                // full publish, hence identical predictions.
                let wire = ModelDelta::from_bytes(&delta.to_bytes()).unwrap();
                assert_eq!(wire, delta);
                let patched = wire.apply(&base_bytes).unwrap();
                assert_eq!(patched, new_bytes, "{cm:?}/{pm:?} not bit-exact");
                let loaded = ModelBundle::from_bytes(&patched).unwrap();
                loaded.run_canary().unwrap();
                assert_eq!(
                    loaded.predict(&probe).unwrap(),
                    new.predict(&probe).unwrap(),
                    "{cm:?}/{pm:?}"
                );
            }
        }
    }

    #[test]
    fn delta_is_much_smaller_than_full_bundle() {
        let base = trained(ClusterMode::Integer, PredictionMode::Full, 7);
        let new = perturbed(&base);
        let (base_bytes, new_bytes) = (base.to_bytes().unwrap(), new.to_bytes().unwrap());
        let delta = ModelDelta::compute(&base_bytes, 1, &new_bytes)
            .unwrap()
            .unwrap();
        let wire = delta.to_bytes();
        assert!(
            wire.len() * 2 < new_bytes.len(),
            "delta {} vs full {}",
            wire.len(),
            new_bytes.len()
        );
    }

    #[test]
    fn config_change_is_not_delta_able() {
        let a = trained(ClusterMode::Integer, PredictionMode::Full, 8);
        let b = trained(ClusterMode::FrameworkBinary, PredictionMode::BinaryQuery, 8);
        let d = ModelDelta::compute(&a.to_bytes().unwrap(), 1, &b.to_bytes().unwrap()).unwrap();
        assert!(d.is_none());
    }

    #[test]
    fn wrong_base_is_rejected() {
        let base = trained(ClusterMode::Integer, PredictionMode::Full, 9);
        let new = perturbed(&base);
        let other = trained(ClusterMode::Integer, PredictionMode::Full, 10);
        let delta = ModelDelta::compute(&base.to_bytes().unwrap(), 1, &new.to_bytes().unwrap())
            .unwrap()
            .unwrap();
        let err = delta.apply(&other.to_bytes().unwrap()).unwrap_err();
        assert!(err.to_string().contains("base hash"), "{err}");
    }

    #[test]
    fn tampered_delta_is_rejected_by_checksum() {
        let base = trained(ClusterMode::Integer, PredictionMode::Full, 11);
        let new = perturbed(&base);
        let delta = ModelDelta::compute(&base.to_bytes().unwrap(), 1, &new.to_bytes().unwrap())
            .unwrap()
            .unwrap();
        let mut wire = delta.to_bytes();
        let mid = wire.len() / 2;
        wire[mid] ^= 0x08;
        let err = ModelDelta::from_bytes(&wire).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn identical_bundles_produce_empty_delta() {
        let base = trained(ClusterMode::Integer, PredictionMode::Full, 12);
        let bytes = base.to_bytes().unwrap();
        let delta = ModelDelta::compute(&bytes, 3, &bytes).unwrap().unwrap();
        assert_eq!(delta.changed_vectors(), 0);
        assert_eq!(delta.base_version, 3);
        assert_eq!(delta.apply(&bytes).unwrap(), bytes);
    }
}
