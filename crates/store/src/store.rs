//! The sharded model store: key → shard → packfile blob → decoded model.
//!
//! # Resolution path
//!
//! [`ModelStore::get`] hashes the key onto a shard, takes that shard's
//! lock (shards never contend with each other), and:
//!
//! 1. returns the hot LRU entry if the decoded model is resident;
//! 2. otherwise reads the blob from the shard's packfiles (zero-copy from
//!    the mmap snapshot when covered) and decodes it **lazily** —
//!    [`ModelBundle::decode_serving`] verifies only the scalers and model
//!    section CRCs, leaving the canary section untouched;
//! 3. on decode failure, rolls the key back to its last-good image (the
//!    previous publish), records the rollback in the index log, and
//!    serves that — per-key rollback that cannot disturb any other
//!    resident model.
//!
//! # Publication
//!
//! [`ModelStore::publish_full`] and [`ModelStore::publish_delta`] are
//! canary-gated: the incoming (or patched) bundle must parse, pass every
//! section checksum, and replay its canary bit-exactly *before* the index
//! is updated. The previous image becomes the key's last-good fallback.
//! Deltas are applied to the key's current image and verified to
//! reproduce the exact bytes of the full bundle the sender diffed
//! ([`ModelDelta::apply`]), so a base+delta chain can never drift from
//! full publishes.

use crate::delta::ModelDelta;
use crate::faults::StoreFaultInjector;
use crate::lru::LruCache;
use crate::pack::{self, LogRecord, PackLoc, PackSet};
use crate::{fnv1a, StoreError};
use reghd_serve::bundle::{ModelBundle, SectionFrames};
use reghd_serve::registry::{ModelMeta, ModelResolver, ServedModel};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Remap the active pack after this many appended bytes, so sustained
/// publishing keeps reads on the zero-copy path.
const REMAP_AFTER_BYTES: u64 = 4 << 20;

/// Sizing knobs for a [`ModelStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Number of shards (independent lock + packfiles + hot cache).
    pub shards: usize,
    /// Total hot-cache budget in bytes, split evenly across shards.
    pub hot_budget_bytes: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            hot_budget_bytes: 64 << 20,
        }
    }
}

/// Index entry for one key.
#[derive(Debug, Clone, Copy)]
struct ImageRef {
    version: u64,
    loc: PackLoc,
    hash: u64,
}

#[derive(Debug, Clone, Copy)]
struct KeyState {
    current: ImageRef,
    last_good: Option<ImageRef>,
}

#[derive(Debug)]
struct Shard {
    dir: PathBuf,
    packs: PackSet,
    index: HashMap<String, KeyState>,
    hot: LruCache<Arc<ServedModel>>,
    appended_since_remap: u64,
}

/// Point-in-time operational counters for the whole store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Resident keys across all shards.
    pub keys: usize,
    /// Decoded models currently hot.
    pub hot_entries: usize,
    /// Bytes charged against the hot budget.
    pub hot_bytes: usize,
    /// Total hot budget.
    pub hot_budget: usize,
    /// Hot-cache hits.
    pub hits: u64,
    /// Hot-cache misses (each one paid a cold decode).
    pub misses: u64,
    /// Hot-cache evictions.
    pub evictions: u64,
    /// Keys rolled back to last-good after a validation failure.
    pub rollbacks: u64,
    /// Images that failed first-touch validation.
    pub decode_failures: u64,
    /// Full-bundle publishes admitted.
    pub publishes: u64,
    /// Delta publishes admitted.
    pub delta_publishes: u64,
    /// Bytes across all pack generations.
    pub pack_bytes: u64,
    /// Whether active packs are true kernel mappings.
    pub kernel_mapped: bool,
}

/// Sharded per-user model store (see the crate docs for the design).
#[derive(Debug)]
pub struct ModelStore {
    shards: Vec<Mutex<Shard>>,
    rollbacks: AtomicU64,
    decode_failures: AtomicU64,
    publishes: AtomicU64,
    delta_publishes: AtomicU64,
}

fn lock_shard(m: &Mutex<Shard>) -> MutexGuard<'_, Shard> {
    // Shard state stays structurally valid across a panicking holder
    // (same reasoning as the serving registry's lock recovery).
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Keys must survive a whitespace-delimited text log.
fn validate_key(key: &str) -> Result<(), StoreError> {
    let ok = !key.is_empty()
        && key.len() <= 200
        && key
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b':' | b'-'));
    if ok {
        Ok(())
    } else {
        Err(StoreError::BadKey(key.to_string()))
    }
}

/// Decodes a blob for serving (lazy canary) and wraps it as a registry
/// entry.
fn build_served(key: &str, version: u64, blob: &[u8]) -> Result<ServedModel, String> {
    let bundle = ModelBundle::decode_serving(blob)?;
    let cfg = bundle.model().config();
    let canary_rows = SectionFrames::parse(blob)
        .map(|f| f.canary_rows_hint())
        .unwrap_or(0);
    let meta = ModelMeta {
        name: key.to_string(),
        version,
        hash: format!("{:016x}", fnv1a(blob)),
        bytes: blob.len(),
        input_dim: bundle.num_features(),
        dim: cfg.dim,
        models: cfg.models,
        cluster_mode: cfg.cluster_mode.label(),
        prediction_mode: cfg.prediction_mode.label(),
        canary_rows,
        mem: bundle.approx_mem_bytes(),
    };
    let state_crc = bundle.state_checksum();
    Ok(ServedModel {
        bundle,
        meta,
        state_crc,
        corrupt: AtomicBool::new(false),
    })
}

impl ModelStore {
    /// Opens (creating if absent) a store rooted at `root`, replaying each
    /// shard's index log. A torn log tail (crash mid-append) drops at most
    /// the record being written: the log is truncated to its parsed prefix
    /// before the shard accepts new appends, so a later record can never
    /// fuse with the partial one.
    ///
    /// The shard count is part of the on-disk layout (key → shard routing
    /// is `hash % shards`), so an existing store is always reopened with
    /// the shard count it was created with; `cfg.shards` only sizes a
    /// fresh store.
    pub fn open(root: &Path, cfg: StoreConfig) -> Result<Self, StoreError> {
        let existing = Self::count_shard_dirs(root)?;
        let shards = if existing > 0 {
            existing
        } else {
            cfg.shards.max(1)
        };
        let per_shard_budget = (cfg.hot_budget_bytes / shards).max(1);
        let mut out = Vec::with_capacity(shards);
        for i in 0..shards {
            let dir = root.join(format!("shard-{i}"));
            let packs = PackSet::open(&dir)?;
            let (records, torn) = pack::read_index_log(&dir)?;
            if torn {
                // Crash mid-append left a partial, newline-less record at
                // the tail. Rewrite the log to the parsed prefix now —
                // appending after the partial record would fuse the two
                // into one unparseable line and silently drop every
                // later record on the next replay.
                pack::rewrite_index_log(&dir, &records, None)?;
            }
            let mut index: HashMap<String, KeyState> = HashMap::new();
            for rec in records {
                match rec {
                    LogRecord::Put {
                        key,
                        loc,
                        hash,
                        version,
                    } => {
                        let image = ImageRef { version, loc, hash };
                        index
                            .entry(key)
                            .and_modify(|s| {
                                s.last_good = Some(s.current);
                                s.current = image;
                            })
                            .or_insert(KeyState {
                                current: image,
                                last_good: None,
                            });
                    }
                    LogRecord::Rollback { key } => {
                        if let Some(s) = index.get_mut(&key) {
                            if let Some(lg) = s.last_good.take() {
                                s.current = lg;
                            }
                        }
                    }
                }
            }
            out.push(Mutex::new(Shard {
                dir,
                packs,
                index,
                hot: LruCache::new(per_shard_budget),
                appended_since_remap: 0,
            }));
        }
        Ok(Self {
            shards: out,
            rollbacks: AtomicU64::new(0),
            decode_failures: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            delta_publishes: AtomicU64::new(0),
        })
    }

    /// Attaches (or detaches, with `None`) a write-path fault injector to
    /// every shard — the chaos-testing seam (see [`crate::faults`]). Reads
    /// are never faulted; injected failures surface as [`StoreError::Io`]
    /// from publishes, audits, and compaction, and the store's in-memory
    /// index is restored to the pre-operation state whenever durability
    /// fails, so a faulted publish is simply *absent* rather than
    /// half-visible.
    pub fn attach_faults(&self, faults: Option<Arc<StoreFaultInjector>>) {
        for shard in &self.shards {
            lock_shard(shard).packs.set_faults(faults.clone());
        }
    }

    /// Counts contiguous `shard-<i>` directories under `root` (the layout
    /// [`ModelStore::open`] creates).
    fn count_shard_dirs(root: &Path) -> Result<usize, StoreError> {
        let mut n = 0;
        while root.join(format!("shard-{n}")).is_dir() {
            n += 1;
        }
        Ok(n)
    }

    fn shard_for(&self, key: &str) -> &Mutex<Shard> {
        let h = fnv1a(key.as_bytes()) as usize;
        &self.shards[h % self.shards.len()]
    }

    /// Resolves `key` to its decoded model, decoding from the packfiles on
    /// a cache miss. A current image that fails its (lazily validated)
    /// scalers/model checksums triggers a per-key rollback to the
    /// last-good image; every other key's resident decode is untouched.
    pub fn get(&self, key: &str) -> Result<Arc<ServedModel>, StoreError> {
        let mut shard = lock_shard(self.shard_for(key));
        if let Some(hit) = shard.hot.get(key) {
            return Ok(hit.clone());
        }
        let state = *shard
            .index
            .get(key)
            .ok_or_else(|| StoreError::NotFound(key.to_string()))?;
        match self.decode_into_hot(&mut shard, key, state.current) {
            Ok(served) => Ok(served),
            Err(first_err) => {
                // Only validation failures demote the key: a transient
                // read error (e.g. EIO) says nothing about the bytes, so
                // rolling back durably would discard a good image.
                if !matches!(first_err, StoreError::Corrupt(_)) {
                    return Err(first_err);
                }
                self.decode_failures.fetch_add(1, Ordering::Relaxed);
                let Some(lg) = state.last_good else {
                    return Err(first_err);
                };
                // Roll back: last-good becomes current, durably.
                let rolled = KeyState {
                    current: lg,
                    last_good: None,
                };
                shard.index.insert(key.to_string(), rolled);
                pack::append_index_log(
                    &shard.dir,
                    &LogRecord::Rollback {
                        key: key.to_string(),
                    },
                    shard.packs.faults(),
                )?;
                self.rollbacks.fetch_add(1, Ordering::Relaxed);
                self.decode_into_hot(&mut shard, key, lg)
            }
        }
    }

    /// Reads, decodes, and caches one image. Shared by the fresh-load and
    /// rollback paths of [`ModelStore::get`].
    fn decode_into_hot(
        &self,
        shard: &mut Shard,
        key: &str,
        image: ImageRef,
    ) -> Result<Arc<ServedModel>, StoreError> {
        let blob = shard.packs.read(image.loc)?;
        let served = build_served(key, image.version, &blob).map_err(StoreError::Corrupt)?;
        let mem = served.meta.mem;
        let served = Arc::new(served);
        drop(blob);
        shard.hot.insert(key, served.clone(), mem);
        Ok(served)
    }

    /// Validates and admits full bundle bytes under `key`, bumping its
    /// version. Gated exactly like a registry publish: the bundle must
    /// parse, pass all section checksums, and replay its canary
    /// bit-exactly before the index is touched. The previous image becomes
    /// the key's last-good fallback.
    pub fn publish_full(&self, key: &str, bytes: &[u8]) -> Result<ModelMeta, StoreError> {
        validate_key(key)?;
        // Full (eager) validation — publish is the trust boundary; the
        // lazy CRC path on reads exists because this already ran.
        let bundle = ModelBundle::from_bytes(bytes).map_err(StoreError::Bundle)?;
        bundle.run_canary().map_err(StoreError::Canary)?;
        self.publishes.fetch_add(1, Ordering::Relaxed);
        let mut shard = lock_shard(self.shard_for(key));
        self.admit(&mut shard, key, bytes, &bundle)
    }

    /// Applies a delta to `key`'s current image and admits the patched
    /// full bundle. The delta must target the key's current version and
    /// hash, and the patched bytes must hash to the full bundle the
    /// sender diffed — so base+delta is bit-identical to a full publish.
    pub fn publish_delta(&self, key: &str, delta: &ModelDelta) -> Result<ModelMeta, StoreError> {
        validate_key(key)?;
        let mut shard = lock_shard(self.shard_for(key));
        let state = *shard
            .index
            .get(key)
            .ok_or_else(|| StoreError::NotFound(key.to_string()))?;
        if state.current.version != delta.base_version {
            return Err(StoreError::Delta(format!(
                "delta targets v{}, key is at v{}",
                delta.base_version, state.current.version
            )));
        }
        let base = shard.packs.read(state.current.loc)?.into_owned();
        let patched = delta.apply(&base)?;
        let bundle = ModelBundle::from_bytes(&patched).map_err(StoreError::Bundle)?;
        bundle.run_canary().map_err(StoreError::Canary)?;
        self.delta_publishes.fetch_add(1, Ordering::Relaxed);
        self.admit(&mut shard, key, &patched, &bundle)
    }

    /// Appends an already-validated image and updates index, log, and hot
    /// cache.
    fn admit(
        &self,
        shard: &mut Shard,
        key: &str,
        bytes: &[u8],
        bundle: &ModelBundle,
    ) -> Result<ModelMeta, StoreError> {
        let loc = shard.packs.append(bytes)?;
        shard.appended_since_remap += u64::from(loc.len);
        if shard.appended_since_remap >= REMAP_AFTER_BYTES {
            shard.packs.remap_active()?;
            shard.appended_since_remap = 0;
        }
        let prev = shard.index.get(key).copied();
        let version = prev.map(|s| s.current.version + 1).unwrap_or(1);
        let hash = fnv1a(bytes);
        let image = ImageRef { version, loc, hash };
        let state = KeyState {
            current: image,
            last_good: prev.map(|s| s.current),
        };
        shard.index.insert(key.to_string(), state);
        // Blob bytes must be durable before the record pointing at them.
        let durable = shard
            .packs
            .sync_active()
            .and_then(|()| {
                pack::append_index_log(
                    &shard.dir,
                    &LogRecord::Put {
                        key: key.to_string(),
                        loc,
                        hash,
                        version,
                    },
                    shard.packs.faults(),
                )
            })
            .map_err(StoreError::Io);
        if let Err(e) = durable {
            // The record never landed, so a reopen replays the *previous*
            // state; restore the in-memory index to match — a failed
            // publish must be absent, not half-visible until restart.
            match prev {
                Some(p) => shard.index.insert(key.to_string(), p),
                None => shard.index.remove(key),
            };
            return Err(e);
        }
        // The old decode (if hot) keeps serving for whoever pinned its
        // Arc; later gets decode the new image.
        shard.hot.remove(key);
        let cfg = bundle.model().config();
        Ok(ModelMeta {
            name: key.to_string(),
            version,
            hash: format!("{hash:016x}"),
            bytes: bytes.len(),
            input_dim: bundle.num_features(),
            dim: cfg.dim,
            models: cfg.models,
            cluster_mode: cfg.cluster_mode.label(),
            prediction_mode: cfg.prediction_mode.label(),
            canary_rows: bundle.canary_len(),
            mem: bundle.approx_mem_bytes(),
        })
    }

    /// Fully validates `key`'s current image — the **first touch** of the
    /// canary section the serving path deliberately skips: its checksum is
    /// verified, it is decoded, and the canary is replayed bit-exactly.
    /// A failure rolls the key back to its last-good image (durably, like
    /// the read path) and reports the error.
    pub fn audit(&self, key: &str) -> Result<(), StoreError> {
        let mut shard = lock_shard(self.shard_for(key));
        let state = *shard
            .index
            .get(key)
            .ok_or_else(|| StoreError::NotFound(key.to_string()))?;
        let blob = shard.packs.read(state.current.loc)?.into_owned();
        let verdict = (|| -> Result<(), String> {
            let mut bundle = ModelBundle::decode_serving(&blob)?;
            bundle.attach_canary_from(&blob)?;
            bundle.run_canary()
        })();
        match verdict {
            Ok(()) => Ok(()),
            Err(msg) => {
                self.decode_failures.fetch_add(1, Ordering::Relaxed);
                if let Some(lg) = state.last_good {
                    shard.index.insert(
                        key.to_string(),
                        KeyState {
                            current: lg,
                            last_good: None,
                        },
                    );
                    pack::append_index_log(
                        &shard.dir,
                        &LogRecord::Rollback {
                            key: key.to_string(),
                        },
                        shard.packs.faults(),
                    )?;
                    shard.hot.remove(key);
                    self.rollbacks.fetch_add(1, Ordering::Relaxed);
                }
                Err(StoreError::Corrupt(msg))
            }
        }
    }

    /// Registers `count` synthetic keys (`<prefix>0 … <prefix>count-1`)
    /// all aliasing one validated bundle image appended once per shard —
    /// the benchmark/test helper for standing up a million-key resident
    /// fleet without writing a million blobs. Alias entries live in the
    /// in-memory index only (not the log): they model *resident index
    /// scale*, not durable state.
    pub fn bulk_alias(&self, prefix: &str, count: usize, bytes: &[u8]) -> Result<(), StoreError> {
        validate_key(prefix)?;
        let bundle = ModelBundle::from_bytes(bytes).map_err(StoreError::Bundle)?;
        bundle.run_canary().map_err(StoreError::Canary)?;
        let mut locs = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let mut s = lock_shard(shard);
            let loc = s.packs.append(bytes)?;
            s.packs.remap_active()?;
            locs.push(loc);
        }
        let hash = fnv1a(bytes);
        for i in 0..count {
            let key = format!("{prefix}{i}");
            let h = fnv1a(key.as_bytes()) as usize % self.shards.len();
            let mut s = lock_shard(&self.shards[h]);
            s.index.insert(
                key,
                KeyState {
                    current: ImageRef {
                        version: 1,
                        loc: locs[h],
                        hash,
                    },
                    last_good: None,
                },
            );
        }
        Ok(())
    }

    /// Rewrites every shard's live blobs (current + last-good per key)
    /// into a fresh pack generation, atomically replaces the index log,
    /// and deletes retired generations. Safe against crashes at any point:
    /// the rename of `index.log` is the commit.
    pub fn compact(&self) -> Result<(), StoreError> {
        for shard in &self.shards {
            let mut s = lock_shard(shard);
            let gen = s.packs.start_new_gen()?;
            let mut keys: Vec<String> = s.index.keys().cloned().collect();
            keys.sort();
            let mut records = Vec::with_capacity(keys.len() * 2);
            for key in keys {
                let state = s.index[&key];
                let mut moved = state;
                if let Some(lg) = state.last_good {
                    let blob = s.packs.read(lg.loc)?.into_owned();
                    let loc = s.packs.append(&blob)?;
                    moved.last_good = Some(ImageRef { loc, ..lg });
                    records.push(LogRecord::Put {
                        key: key.clone(),
                        loc,
                        hash: lg.hash,
                        version: lg.version,
                    });
                }
                let blob = s.packs.read(state.current.loc)?.into_owned();
                let loc = s.packs.append(&blob)?;
                moved.current = ImageRef {
                    loc,
                    ..state.current
                };
                records.push(LogRecord::Put {
                    key: key.clone(),
                    loc,
                    hash: state.current.hash,
                    version: state.current.version,
                });
                s.index.insert(key, moved);
            }
            // Rewritten blobs must hit disk before the log rename commits
            // references to them.
            s.packs.sync_active()?;
            pack::rewrite_index_log(&s.dir, &records, s.packs.faults())?;
            s.packs.retire_except(&[gen])?;
            s.packs.remap_active()?;
            s.appended_since_remap = 0;
        }
        Ok(())
    }

    /// Number of resident keys across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_shard(s).index.len()).sum()
    }

    /// Whether no keys are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time counters across all shards.
    pub fn stats(&self) -> StoreStats {
        let mut st = StoreStats {
            rollbacks: self.rollbacks.load(Ordering::Relaxed),
            decode_failures: self.decode_failures.load(Ordering::Relaxed),
            publishes: self.publishes.load(Ordering::Relaxed),
            delta_publishes: self.delta_publishes.load(Ordering::Relaxed),
            kernel_mapped: true,
            ..StoreStats::default()
        };
        for shard in &self.shards {
            let s = lock_shard(shard);
            st.keys += s.index.len();
            st.hot_entries += s.hot.len();
            st.hot_bytes += s.hot.resident_bytes();
            st.hot_budget += s.hot.budget_bytes();
            let lru = s.hot.stats();
            st.hits += lru.hits;
            st.misses += lru.misses;
            st.evictions += lru.evictions;
            st.pack_bytes += s.packs.total_bytes();
            st.kernel_mapped &= s.packs.kernel_mapped();
        }
        st
    }
}

impl ModelResolver for ModelStore {
    fn resolve(&self, key: &str) -> Result<Option<Arc<ServedModel>>, String> {
        match self.get(key) {
            Ok(served) => Ok(Some(served)),
            // Authoritative answers — retrying cannot change them: the key
            // is absent, or its image is corrupt with no fallback.
            Err(StoreError::NotFound(_) | StoreError::Corrupt(_)) => Ok(None),
            // Everything else (I/O, injected faults) is transient: the
            // registry's retry/breaker layer decides what happens next.
            Err(e) => Err(e.to_string()),
        }
    }

    fn hot_models(&self) -> Vec<ModelMeta> {
        let mut metas = Vec::new();
        for shard in &self.shards {
            let s = lock_shard(shard);
            s.hot.for_each(|_, m| metas.push(m.meta.clone()));
        }
        metas.sort_by(|a, b| a.name.cmp(&b.name));
        metas
    }

    fn stats_line(&self) -> String {
        let st = self.stats();
        format!(
            "shards={} keys={} hot={} hot_bytes={} budget={} hits={} misses={} \
             evictions={} rollbacks={} decode_failures={} publishes={} \
             delta_publishes={} pack_bytes={} mmap={}",
            self.shards.len(),
            st.keys,
            st.hot_entries,
            st.hot_bytes,
            st.hot_budget,
            st.hits,
            st.misses,
            st.evictions,
            st.rollbacks,
            st.decode_failures,
            st.publishes,
            st.delta_publishes,
            st.pack_bytes,
            st.kernel_mapped,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encoding::EncoderSpec;
    use reghd::config::RegHdConfig;
    use reghd::{RegHdRegressor, Regressor};

    fn tmp_root(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("reghd_store_store_{name}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    /// Trains a small bundle; different seeds give byte-distinct models.
    fn bundle(seed: u64) -> ModelBundle {
        let rows: Vec<Vec<f32>> = (0..50)
            .map(|i| vec![i as f32 / 25.0, (i % 4) as f32])
            .collect();
        let ys: Vec<f32> = rows.iter().map(|r| 1.5 * r[0] + r[1]).collect();
        let spec = EncoderSpec::Nonlinear {
            input_dim: 2,
            dim: 128,
            seed: seed ^ 0xC11,
        };
        let cfg = RegHdConfig::builder()
            .dim(128)
            .models(2)
            .seed(seed)
            .max_epochs(3)
            .build();
        let mut model = RegHdRegressor::new(cfg, spec.build());
        model.fit(&rows, &ys);
        ModelBundle::from_trained(model, vec![0.0; 2], vec![1.0; 2], 0.0, 1.0, &rows).unwrap()
    }

    fn one_shard(budget: usize) -> StoreConfig {
        StoreConfig {
            shards: 1,
            hot_budget_bytes: budget,
        }
    }

    /// Offset of the canary section payload within a v2 blob.
    fn canary_payload_offset(bytes: &[u8]) -> usize {
        let scalers_len = u64::from_le_bytes(bytes[6..14].try_into().unwrap()) as usize;
        6 + 8 + scalers_len + 4 + 8
    }

    #[test]
    fn publish_get_and_reopen_roundtrip() {
        let root = tmp_root("roundtrip");
        let store = ModelStore::open(&root, StoreConfig::default()).unwrap();
        let a = bundle(1).to_bytes().unwrap();
        let b = bundle(2).to_bytes().unwrap();
        let meta = store.publish_full("user-a", &a).unwrap();
        assert_eq!(meta.version, 1);
        assert_eq!(meta.hash, format!("{:016x}", fnv1a(&a)));
        store.publish_full("user-b", &b).unwrap();
        let got = store.get("user-a").unwrap();
        assert_eq!(got.meta.bytes, a.len());
        // Lazy decode: canary section untouched, hint still reported.
        assert_eq!(got.bundle.canary_len(), 0);
        assert!(got.meta.canary_rows > 0);
        assert!(matches!(store.get("nope"), Err(StoreError::NotFound(_))));
        drop(store);

        // Reopen with a *different* configured shard count: the on-disk
        // layout wins, and index log replay restores both keys.
        let store = ModelStore::open(&root, one_shard(64 << 20)).unwrap();
        assert_eq!(store.shards.len(), StoreConfig::default().shards);
        assert_eq!(store.len(), 2);
        assert_eq!(store.get("user-a").unwrap().meta.bytes, a.len());
        assert_eq!(store.get("user-b").unwrap().meta.bytes, b.len());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn hot_swap_leaves_other_keys_decoded_models_untouched() {
        let root = tmp_root("hotswap");
        let store = ModelStore::open(&root, StoreConfig::default()).unwrap();
        store
            .publish_full("a", &bundle(10).to_bytes().unwrap())
            .unwrap();
        store
            .publish_full("b", &bundle(11).to_bytes().unwrap())
            .unwrap();
        let a1 = store.get("a").unwrap();
        let b1 = store.get("b").unwrap();

        store
            .publish_full("a", &bundle(12).to_bytes().unwrap())
            .unwrap();

        // Other keys' decoded models: same Arc, same version.
        let b2 = store.get("b").unwrap();
        assert!(Arc::ptr_eq(&b1, &b2));
        assert_eq!(b2.meta.version, 1);

        // The swapped key re-decodes at the new version...
        let a2 = store.get("a").unwrap();
        assert!(!Arc::ptr_eq(&a1, &a2));
        assert_eq!(a2.meta.version, 2);
        // ...while the pinned old Arc is untouched.
        assert_eq!(a1.meta.version, 1);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn corrupt_unused_canary_serves_then_audit_rolls_back() {
        let root = tmp_root("canary_rot");
        let v1 = bundle(20).to_bytes().unwrap();
        let v2 = bundle(21).to_bytes().unwrap();
        {
            let store = ModelStore::open(&root, one_shard(64 << 20)).unwrap();
            store.publish_full("u", &v1).unwrap();
            store.publish_full("u", &v2).unwrap();
        }
        // Rot one byte inside v2's canary *data* on disk. v2 was appended
        // right after v1 in shard-0/pack-1.bin.
        let pack = root.join("shard-0").join("pack-1.bin");
        let mut raw = std::fs::read(&pack).unwrap();
        let rot = v1.len() + canary_payload_offset(&v2) + 9;
        raw[rot] ^= 0x80;
        std::fs::write(&pack, &raw).unwrap();

        let store = ModelStore::open(&root, one_shard(64 << 20)).unwrap();
        // The corrupt section is unused on the serving path: loads fine.
        let served = store.get("u").unwrap();
        assert_eq!(served.meta.version, 2);
        // First touch of the canary section fails cleanly...
        let err = store.audit("u").unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "got {err}");
        // ...and rolled the key back to the last-good image.
        let after = store.get("u").unwrap();
        assert_eq!(after.meta.version, 1);
        assert_eq!(after.meta.bytes, v1.len());
        store.audit("u").unwrap();
        let st = store.stats();
        assert_eq!(st.rollbacks, 1);
        assert_eq!(st.decode_failures, 1);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn corrupt_model_section_rolls_back_on_get() {
        let root = tmp_root("model_rot");
        let v1 = bundle(30).to_bytes().unwrap();
        let v2 = bundle(31).to_bytes().unwrap();
        {
            let store = ModelStore::open(&root, one_shard(64 << 20)).unwrap();
            store.publish_full("u", &v1).unwrap();
            store.publish_full("u", &v2).unwrap();
        }
        // Rot a byte near the end of v2 — inside the model section, which
        // the serving decode *does* verify.
        let pack = root.join("shard-0").join("pack-1.bin");
        let mut raw = std::fs::read(&pack).unwrap();
        let n = raw.len();
        raw[n - 12] ^= 0xFF;
        std::fs::write(&pack, &raw).unwrap();

        let store = ModelStore::open(&root, one_shard(64 << 20)).unwrap();
        let served = store.get("u").unwrap();
        assert_eq!(served.meta.version, 1, "rolled back to last-good");
        let st = store.stats();
        assert_eq!(st.rollbacks, 1);
        assert_eq!(st.decode_failures, 1);
        // The rollback is durable: a reopen serves v1 without re-failing.
        drop(store);
        let store = ModelStore::open(&root, one_shard(64 << 20)).unwrap();
        assert_eq!(store.get("u").unwrap().meta.version, 1);
        assert_eq!(store.stats().rollbacks, 0);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn corrupt_image_without_fallback_errors_cleanly() {
        let root = tmp_root("no_fallback");
        let v1 = bundle(40).to_bytes().unwrap();
        {
            let store = ModelStore::open(&root, one_shard(64 << 20)).unwrap();
            store.publish_full("u", &v1).unwrap();
        }
        let pack = root.join("shard-0").join("pack-1.bin");
        let mut raw = std::fs::read(&pack).unwrap();
        let n = raw.len();
        raw[n - 12] ^= 0xFF;
        std::fs::write(&pack, &raw).unwrap();

        let store = ModelStore::open(&root, one_shard(64 << 20)).unwrap();
        assert!(matches!(store.get("u"), Err(StoreError::Corrupt(_))));
        let st = store.stats();
        assert_eq!(st.rollbacks, 0);
        assert_eq!(st.decode_failures, 1);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn torn_log_tail_is_repaired_on_open() {
        use std::io::Write;
        let root = tmp_root("torn_tail");
        let v1 = bundle(46).to_bytes().unwrap();
        let v2 = bundle(47).to_bytes().unwrap();
        {
            let store = ModelStore::open(&root, one_shard(64 << 20)).unwrap();
            store.publish_full("a", &v1).unwrap();
        }
        // Crash mid-append: a partial, newline-less record at the tail.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(root.join("shard-0").join("index.log"))
            .unwrap();
        f.write_all(b"put b 1 99").unwrap();
        drop(f);

        // Reopen repairs the tail, so a publish made after the crash must
        // survive the *next* reopen instead of fusing with the torn
        // record and being dropped.
        let store = ModelStore::open(&root, one_shard(64 << 20)).unwrap();
        assert_eq!(store.len(), 1);
        store.publish_full("b", &v2).unwrap();
        drop(store);
        let store = ModelStore::open(&root, one_shard(64 << 20)).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.get("a").unwrap().meta.bytes, v1.len());
        assert_eq!(store.get("b").unwrap().meta.bytes, v2.len());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn transient_read_error_does_not_roll_back() {
        use std::io::Write;
        let root = tmp_root("io_no_rollback");
        let v1 = bundle(48).to_bytes().unwrap();
        {
            let store = ModelStore::open(&root, one_shard(64 << 20)).unwrap();
            store.publish_full("u", &v1).unwrap();
            store.publish_full("u", &v1).unwrap(); // gives u a last-good
        }
        // Forge a current image in a pack generation that is not on disk:
        // reads of it fail with Io, not Corrupt.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(root.join("shard-0").join("index.log"))
            .unwrap();
        writeln!(f, "put u 9 0 {} {:016x} 3", v1.len(), fnv1a(&v1)).unwrap();
        drop(f);

        let store = ModelStore::open(&root, one_shard(64 << 20)).unwrap();
        let err = store.get("u").unwrap_err();
        assert!(matches!(err, StoreError::Io(_)), "got {err}");
        // The read failure must not have demoted the key.
        let st = store.stats();
        assert_eq!(st.rollbacks, 0);
        assert_eq!(st.decode_failures, 0);
        drop(store);
        let store = ModelStore::open(&root, one_shard(64 << 20)).unwrap();
        assert!(matches!(store.get("u").unwrap_err(), StoreError::Io(_)));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn delta_publish_matches_full_publish_bit_exactly() {
        let root = tmp_root("delta_pub");
        let store = ModelStore::open(&root, StoreConfig::default()).unwrap();
        let base = bundle(50).to_bytes().unwrap();
        store.publish_full("u", &base).unwrap();

        // The "next training step": perturb via a fresh bundle from the
        // same config family won't delta (different seed ⇒ different
        // config), so patch the base instead.
        let mut next = ModelBundle::from_bytes(&base).unwrap();
        let rows = next.canary_rows().to_vec();
        let model = next.model();
        let cfg = model.config().clone();
        let mut clusters = model.clusters().integer_clusters().to_vec();
        let mut c0: Vec<f32> = clusters[0].as_slice().to_vec();
        for v in &mut c0 {
            *v += 0.5;
        }
        clusters[0] = hdc::RealHv::from_vec(c0);
        let spec = EncoderSpec::Nonlinear {
            input_dim: 2,
            dim: cfg.dim,
            seed: cfg.seed ^ 0xC11,
        };
        let patched = RegHdRegressor::from_parts(
            cfg,
            spec.build(),
            clusters,
            model.models().integer_models().to_vec(),
            model.center().cloned(),
            model.intercept(),
        );
        next = ModelBundle::from_trained(patched, vec![0.0; 2], vec![1.0; 2], 0.0, 1.0, &rows)
            .unwrap();
        let next_bytes = next.to_bytes().unwrap();

        let d = ModelDelta::compute(&base, 1, &next_bytes)
            .unwrap()
            .expect("same-config update must be delta-able");
        let meta = store.publish_delta("u", &d).unwrap();
        assert_eq!(meta.version, 2);
        // Bit-exact: the admitted image hashes as the full bundle would.
        assert_eq!(meta.hash, format!("{:016x}", fnv1a(&next_bytes)));
        assert_eq!(store.get("u").unwrap().meta.hash, meta.hash);

        // Stale delta (still targeting v1) is refused.
        assert!(matches!(
            store.publish_delta("u", &d),
            Err(StoreError::Delta(_))
        ));
        let st = store.stats();
        assert_eq!(st.publishes, 1);
        assert_eq!(st.delta_publishes, 1);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn compact_drops_dead_bytes_and_survives_reopen() {
        let root = tmp_root("compact");
        let store = ModelStore::open(&root, one_shard(64 << 20)).unwrap();
        let images: Vec<Vec<u8>> = (60..65).map(|s| bundle(s).to_bytes().unwrap()).collect();
        for img in &images {
            store.publish_full("u", img).unwrap();
        }
        store.publish_full("v", &images[0]).unwrap();
        let before = store.stats().pack_bytes;
        store.compact().unwrap();
        let after = store.stats().pack_bytes;
        // Live set is u's current+last-good plus v's current: 3 images
        // out of 6 appended.
        assert!(after < before, "compaction must shrink packs");
        assert_eq!(store.get("u").unwrap().meta.version, 5);
        assert_eq!(store.get("v").unwrap().meta.version, 1);
        drop(store);
        let store = ModelStore::open(&root, one_shard(64 << 20)).unwrap();
        assert_eq!(store.get("u").unwrap().meta.version, 5);
        assert_eq!(store.get("v").unwrap().meta.version, 1);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn lru_budget_bounds_hot_set() {
        let root = tmp_root("budget");
        let bytes = bundle(70).to_bytes().unwrap();
        let mem = ModelBundle::from_bytes(&bytes).unwrap().approx_mem_bytes();
        // Budget for ~3 decoded models on a single shard.
        let store = ModelStore::open(&root, one_shard(mem * 3 + mem / 2)).unwrap();
        store.bulk_alias("k", 10, &bytes).unwrap();
        assert_eq!(store.len(), 10);
        for i in 0..10 {
            store.get(&format!("k{i}")).unwrap();
        }
        let st = store.stats();
        assert!(st.hot_entries <= 3, "hot={}", st.hot_entries);
        assert!(st.hot_bytes <= st.hot_budget);
        assert_eq!(st.misses, 10);
        assert!(st.evictions >= 7);
        // Keys beyond the hot set still resolve (cold decode).
        store.get("k0").unwrap();
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn resolver_lists_hot_models_sorted() {
        let root = tmp_root("resolver");
        let store = ModelStore::open(&root, StoreConfig::default()).unwrap();
        for (i, seed) in [80u64, 81, 82].iter().enumerate() {
            store
                .publish_full(&format!("m{i}"), &bundle(*seed).to_bytes().unwrap())
                .unwrap();
        }
        // Touch out of order; listing is still sorted.
        store.get("m2").unwrap();
        store.get("m0").unwrap();
        store.get("m1").unwrap();
        let resolver: &dyn ModelResolver = &store;
        let names: Vec<String> = resolver
            .hot_models()
            .iter()
            .map(|m| m.name.clone())
            .collect();
        assert_eq!(names, ["m0", "m1", "m2"]);
        assert!(resolver.resolve("m1").unwrap().is_some());
        assert!(resolver.resolve("absent").unwrap().is_none());
        assert!(resolver.stats_line().contains("keys=3"));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn faulted_publish_is_absent_not_half_visible() {
        use crate::faults::StoreFaultInjector;
        let root = tmp_root("faulted_publish");
        let store = ModelStore::open(&root, one_shard(64 << 20)).unwrap();
        let v1 = bundle(95).to_bytes().unwrap();
        let v2 = bundle(96).to_bytes().unwrap();
        store.publish_full("u", &v1).unwrap();

        let inj = Arc::new(StoreFaultInjector::new());
        store.attach_faults(Some(inj.clone()));

        // ENOSPC on the blob append: the publish fails before the index is
        // touched and the key still serves v1.
        inj.arm_enospc_appends(1);
        assert!(matches!(
            store.publish_full("u", &v2),
            Err(StoreError::Io(_))
        ));
        assert_eq!(store.get("u").unwrap().meta.version, 1);

        // Fsync failure *after* the in-memory index was updated: the
        // restore path must roll the map back so the failed publish is
        // absent, not visible-until-restart.
        inj.arm_fsync_failures(1);
        assert!(matches!(
            store.publish_full("u", &v2),
            Err(StoreError::Io(_))
        ));
        assert_eq!(store.get("u").unwrap().meta.version, 1);
        assert_eq!(store.get("u").unwrap().meta.bytes, v1.len());

        // A brand-new key under the same fault must not linger either.
        inj.arm_fsync_failures(1);
        assert!(store.publish_full("fresh", &v2).is_err());
        assert!(matches!(store.get("fresh"), Err(StoreError::NotFound(_))));

        // On-disk state agrees with the restored in-memory state.
        drop(store);
        let store = ModelStore::open(&root, one_shard(64 << 20)).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.get("u").unwrap().meta.version, 1);
        assert_eq!(inj.injected(), 3);

        // With faults drained, publishing works again and versions resume
        // from the durable state.
        store.attach_faults(Some(inj.clone()));
        let meta = store.publish_full("u", &v2).unwrap();
        assert_eq!(meta.version, 2);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn short_write_fails_publish_and_later_publishes_stay_readable() {
        use crate::faults::StoreFaultInjector;
        let root = tmp_root("short_write_publish");
        let store = ModelStore::open(&root, one_shard(64 << 20)).unwrap();
        let v1 = bundle(97).to_bytes().unwrap();
        let inj = Arc::new(StoreFaultInjector::new());
        store.attach_faults(Some(inj.clone()));

        // The torn blob fails its publish cleanly...
        inj.arm_short_writes(1);
        assert!(matches!(
            store.publish_full("u", &v1),
            Err(StoreError::Io(_))
        ));
        assert!(matches!(store.get("u"), Err(StoreError::NotFound(_))));

        // ...and the orphaned prefix never corrupts later publishes, whose
        // offsets account for the bytes that did land.
        store.publish_full("u", &v1).unwrap();
        assert_eq!(store.get("u").unwrap().meta.bytes, v1.len());
        drop(store);
        let store = ModelStore::open(&root, one_shard(64 << 20)).unwrap();
        assert_eq!(store.get("u").unwrap().meta.bytes, v1.len());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn resolver_maps_store_errors_onto_retry_semantics() {
        use std::io::Write;
        let root = tmp_root("resolver_semantics");
        let v1 = bundle(98).to_bytes().unwrap();
        {
            let store = ModelStore::open(&root, one_shard(64 << 20)).unwrap();
            store.publish_full("u", &v1).unwrap();
        }
        // Forge a key whose image lives in a pack generation that is not
        // on disk: reads of it fail with Io — transient infrastructure
        // failure, not an authoritative answer about the key.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(root.join("shard-0").join("index.log"))
            .unwrap();
        writeln!(f, "put flaky 9 0 {} {:016x} 1", v1.len(), fnv1a(&v1)).unwrap();
        drop(f);

        let store = ModelStore::open(&root, one_shard(64 << 20)).unwrap();
        let resolver: &dyn ModelResolver = &store;
        // Found and authoritative-miss answers pass through as Ok.
        assert!(resolver.resolve("u").unwrap().is_some());
        assert!(resolver.resolve("ghost").unwrap().is_none());
        // A transient read failure surfaces as Err so the registry's
        // retry/breaker layer takes over.
        let err = resolver.resolve("flaky").unwrap_err();
        assert!(err.contains("io error"), "{err}");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn rejects_hostile_keys() {
        let root = tmp_root("keys");
        let store = ModelStore::open(&root, StoreConfig::default()).unwrap();
        let bytes = bundle(90).to_bytes().unwrap();
        for bad in ["", "has space", "new\nline", "../escape", "a/b"] {
            assert!(
                matches!(store.publish_full(bad, &bytes), Err(StoreError::BadKey(_))),
                "key {bad:?} must be rejected"
            );
        }
        store.publish_full("ok.user:42_x-y", &bytes).unwrap();
        std::fs::remove_dir_all(&root).ok();
    }
}
