//! Deterministic storage fault injection for the model store.
//!
//! The serving crate's [`reghd_serve::faults::FaultInjector`] stresses the
//! compute path (worker kills, stalls, garbled protocol lines); this module
//! is its disk-side twin. A [`StoreFaultInjector`] shared by a store's
//! shards arms **counted** faults — each armed unit is consumed by exactly
//! one I/O operation, so a chaos run can say "the next three appends hit
//! ENOSPC" and assert precisely what survives:
//!
//! * **ENOSPC appends** — a pack append fails before any byte is written;
//! * **short writes** — a pack append persists only a prefix of the blob,
//!   then fails (torn blob; the tracked pack length advances by the bytes
//!   actually written so later appends stay consistent);
//! * **fsync failures** — [`PackSet::sync_active`] or the index-log
//!   append's durability sync reports `EIO`;
//! * **torn renames** — [`pack::rewrite_index_log`] writes and syncs the
//!   temp file but "crashes" before the rename commits, leaving the old
//!   log in place.
//!
//! Counters (not probabilities) keep runs reproducible without any RNG:
//! the fault fires on the next matching operation, full stop. All knobs
//! default to off; an unarmed injector costs one relaxed atomic load per
//! I/O operation.
//!
//! [`PackSet::sync_active`]: crate::pack::PackSet::sync_active
//! [`pack::rewrite_index_log`]: crate::pack::rewrite_index_log

use std::io;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Shared, counted storage-fault state consulted by the pack layer.
///
/// Designed to sit behind an `Arc` shared by every shard of one
/// [`crate::ModelStore`] (and the chaos harness arming it).
#[derive(Debug, Default)]
pub struct StoreFaultInjector {
    /// Pending appends that fail with ENOSPC before writing.
    enospc_appends: AtomicUsize,
    /// Pending appends that persist only a prefix, then fail.
    short_writes: AtomicUsize,
    /// Pending durability syncs (pack or index log) that fail with EIO.
    fsync_failures: AtomicUsize,
    /// Pending index-log rewrites whose commit rename is lost.
    torn_renames: AtomicUsize,
    /// Total faults actually fired (for chaos-run accounting).
    injected: AtomicU64,
}

impl StoreFaultInjector {
    /// Creates an inert injector; every knob starts at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms `n` ENOSPC append failures.
    pub fn arm_enospc_appends(&self, n: usize) {
        self.enospc_appends.fetch_add(n, Ordering::Relaxed);
    }

    /// Arms `n` short (torn-blob) writes.
    pub fn arm_short_writes(&self, n: usize) {
        self.short_writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Arms `n` fsync failures.
    pub fn arm_fsync_failures(&self, n: usize) {
        self.fsync_failures.fetch_add(n, Ordering::Relaxed);
    }

    /// Arms `n` torn index-log renames.
    pub fn arm_torn_renames(&self, n: usize) {
        self.torn_renames.fetch_add(n, Ordering::Relaxed);
    }

    /// Consumes one pending ENOSPC append, if armed.
    pub fn take_enospc_append(&self) -> bool {
        self.fire(&self.enospc_appends)
    }

    /// Consumes one pending short write, if armed.
    pub fn take_short_write(&self) -> bool {
        self.fire(&self.short_writes)
    }

    /// Consumes one pending fsync failure, if armed.
    pub fn take_fsync_failure(&self) -> bool {
        self.fire(&self.fsync_failures)
    }

    /// Consumes one pending torn rename, if armed.
    pub fn take_torn_rename(&self) -> bool {
        self.fire(&self.torn_renames)
    }

    /// Resets every knob to off; pending faults are discarded. The
    /// `injected` total is kept — it counts history, not state.
    pub fn clear(&self) {
        self.enospc_appends.store(0, Ordering::Relaxed);
        self.short_writes.store(0, Ordering::Relaxed);
        self.fsync_failures.store(0, Ordering::Relaxed);
        self.torn_renames.store(0, Ordering::Relaxed);
    }

    /// Whether any fault is currently armed.
    pub fn any_armed(&self) -> bool {
        self.enospc_appends.load(Ordering::Relaxed) != 0
            || self.short_writes.load(Ordering::Relaxed) != 0
            || self.fsync_failures.load(Ordering::Relaxed) != 0
            || self.torn_renames.load(Ordering::Relaxed) != 0
    }

    /// Total faults fired since construction.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    fn fire(&self, counter: &AtomicUsize) -> bool {
        if take_one(counter) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }
}

/// The error an injected ENOSPC append surfaces.
pub fn enospc_error() -> io::Error {
    io::Error::new(
        io::ErrorKind::StorageFull,
        "injected: no space left on device",
    )
}

/// The error an injected short write surfaces after persisting `wrote` of
/// `total` bytes.
pub fn short_write_error(wrote: usize, total: usize) -> io::Error {
    io::Error::new(
        io::ErrorKind::WriteZero,
        format!("injected: short write ({wrote} of {total} bytes)"),
    )
}

/// The error an injected fsync failure surfaces.
pub fn fsync_error() -> io::Error {
    io::Error::other("injected: fsync failed")
}

/// The error an injected torn rename surfaces.
pub fn torn_rename_error() -> io::Error {
    io::Error::other("injected: crash before index.log rename committed")
}

/// Decrements `counter` if positive; returns whether it did. Lock-free
/// compare-exchange loop so concurrent shards never double-consume.
fn take_one(counter: &AtomicUsize) -> bool {
    let mut cur = counter.load(Ordering::Relaxed);
    while cur > 0 {
        match counter.compare_exchange_weak(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_by_default() {
        let inj = StoreFaultInjector::new();
        assert!(!inj.any_armed());
        assert!(!inj.take_enospc_append());
        assert!(!inj.take_short_write());
        assert!(!inj.take_fsync_failure());
        assert!(!inj.take_torn_rename());
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn armed_faults_are_consumed_exactly() {
        let inj = StoreFaultInjector::new();
        inj.arm_enospc_appends(2);
        inj.arm_short_writes(1);
        inj.arm_fsync_failures(1);
        inj.arm_torn_renames(1);
        assert!(inj.any_armed());
        assert!(inj.take_enospc_append());
        assert!(inj.take_enospc_append());
        assert!(!inj.take_enospc_append());
        assert!(inj.take_short_write());
        assert!(!inj.take_short_write());
        assert!(inj.take_fsync_failure());
        assert!(inj.take_torn_rename());
        assert!(!inj.any_armed());
        assert_eq!(inj.injected(), 5);
    }

    #[test]
    fn clear_discards_pending_but_keeps_history() {
        let inj = StoreFaultInjector::new();
        inj.arm_enospc_appends(5);
        assert!(inj.take_enospc_append());
        inj.clear();
        assert!(!inj.any_armed());
        assert!(!inj.take_enospc_append());
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn errors_identify_themselves_as_injected() {
        assert!(enospc_error().to_string().contains("injected"));
        assert_eq!(enospc_error().kind(), io::ErrorKind::StorageFull);
        assert!(short_write_error(3, 10).to_string().contains("3 of 10"));
        assert!(fsync_error().to_string().contains("fsync"));
        assert!(torn_rename_error().to_string().contains("rename"));
    }

    #[test]
    fn injector_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StoreFaultInjector>();
    }
}
