//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate vendors a
//! small, deterministic property-testing engine that is API-compatible
//! with the subset of `proptest` 1.x the workspace's test suites use:
//!
//! - `proptest! { ... }` blocks (with optional `#![proptest_config(..)]`)
//! - `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`
//! - `any::<T>()` for primitives, numeric range strategies, `Just`,
//!   tuple strategies, `prop::collection::vec`, `prop_oneof!`,
//!   `.prop_map` / `.prop_flat_map`, `.boxed()`
//!
//! Differences from real proptest, on purpose: case generation is fully
//! deterministic (seeded from the test name, overridable with
//! `PROPTEST_SEED`), and there is **no shrinking** — a failing case
//! reports the assertion message and case number as-is. For the
//! invariant-style properties in this repository that trade-off keeps the
//! tests meaningful while staying dependency-free.

pub mod test_runner {
    /// Outcome of a single generated test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case violated an assertion; the property is falsified.
        Fail(String),
        /// The case did not meet a `prop_assume!` precondition; skip it.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runner configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the heavier
            // model-fitting properties fast on small CI machines while
            // still exercising plenty of inputs. Tests that need a
            // specific budget set `with_cases` explicitly.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic splitmix64 stream used to drive value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Derive a per-test, per-case seed from the test's name and the
        /// case index. `PROPTEST_SEED` perturbs the whole run when set.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                for b in s.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
            }
            TestRng::from_seed(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u128) -> u128 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a
    /// strategy is just a deterministic function of the RNG stream.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                f,
                reason,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Type-erased strategy, used by `prop_oneof!`.
    pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
        pub(crate) reason: &'static str,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter({}) rejected 1000 candidates", self.reason);
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u128) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Numeric types that can be drawn uniformly from a half-open range.
    pub trait SampleUniform: Copy {
        fn sample(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_sample_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                    assert!(lo < hi, "empty range strategy");
                    let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_sample_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_sample_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                    assert!(lo < hi, "empty range strategy");
                    let u = rng.next_f64();
                    let v = lo as f64 + (hi as f64 - lo as f64) * u;
                    v as $t
                }
            }
        )*};
    }

    impl_sample_float!(f32, f64);

    impl<T: SampleUniform> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample(self.start, self.end, rng)
        }
    }

    impl Strategy for RangeInclusive<i64> {
        type Value = i64;
        fn generate(&self, rng: &mut TestRng) -> i64 {
            let (lo, hi) = (*self.start(), *self.end());
            let span = (hi as i128 - lo as i128 + 1) as u128;
            (lo as i128 + rng.below(span) as i128) as i64
        }
    }

    impl Strategy for RangeInclusive<usize> {
        type Value = usize;
        fn generate(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            let span = hi as u128 - lo as u128 + 1;
            (lo as u128 + rng.below(span)) as usize
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            // Finite, sign-symmetric; real proptest also generates
            // specials but no test here relies on them.
            ((rng.next_f64() - 0.5) * 2.0e6) as f32
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.next_f64() - 0.5) * 2.0e12
        }
    }

    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()`: the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for collection strategies: a fixed size or a
    /// half-open range of sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u128;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "{}: `{:?}` != `{:?}`",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The `proptest!` block: wraps each contained `#[test]` fn in a loop over
/// generated cases. Assertion macros short-circuit the case with an `Err`,
/// which the runner reports with the case number (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut passed: u32 = 0;
                let mut attempts: u64 = 0;
                let max_attempts = (config.cases as u64) * 64 + 256;
                while passed < config.cases {
                    attempts += 1;
                    if attempts > max_attempts {
                        panic!(
                            "proptest {}: too many rejected cases ({} attempts for {} cases)",
                            stringify!($name), attempts, config.cases
                        );
                    }
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        attempts,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} falsified on case {} (attempt {}): {}",
                                stringify!($name), passed + 1, attempts, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}
