//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so this crate provides
//! a minimal, dependency-free bench harness that is API-compatible with
//! the subset of criterion 0.5 the workspace's benches use:
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `bench_with_input`, `benchmark_group` (+ `sample_size`/`finish`),
//! `BenchmarkId`, `Bencher::iter`, and `black_box`.
//!
//! Measurements are honest wall-clock means over an adaptively chosen
//! iteration count, printed one line per benchmark — no statistics
//! machinery, plots, or saved baselines.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterised benchmark, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name: `&str`, `String`, `BenchmarkId`.
pub trait IntoBenchmarkId {
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Drives a single benchmark's measurement loop.
pub struct Bencher {
    /// Target accumulated runtime before reporting (keeps fast and slow
    /// routines comparable without a fixed iteration count).
    budget: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then time batches until the budget is spent.
        black_box(routine());
        let mut iters: u64 = 0;
        let mut elapsed = Duration::ZERO;
        let mut batch: u64 = 1;
        while elapsed < self.budget && iters < 10_000_000 {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            elapsed += start.elapsed();
            iters += batch;
            batch = batch.saturating_mul(2).min(1_000_000);
        }
        let ns = elapsed.as_nanos() as f64 / iters.max(1) as f64;
        self.report(ns, iters);
    }

    fn report(&self, ns_per_iter: f64, iters: u64) {
        println!("    {ns_per_iter:>14.1} ns/iter ({iters} iterations)");
    }
}

fn run_bench(label: &str, sample_budget: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    println!("bench: {label}");
    let mut b = Bencher {
        budget: sample_budget,
    };
    f(&mut b);
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        run_bench(&id.into_label(), self.budget, &mut f);
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_bench(&id.label, self.budget, &mut |b| f(b, input));
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            budget: self.budget,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        let label = format!("{}/{}", self.name, id.into_label());
        run_bench(&label, self.budget, &mut f);
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let label = format!("{}/{}", self.name, id.label);
        run_bench(&label, self.budget, &mut |b| f(b, input));
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
