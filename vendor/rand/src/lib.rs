//! Offline stand-in for the `rand` crate.
//!
//! This workspace implements its own deterministic generator
//! (`hdc::rng::HdRng`, xoshiro256++) and only touches `rand` for the
//! [`RngCore`] trait so that generator can plug into code written against
//! the `rand` API. The build environment has no crates.io access, so the
//! trait surface actually used — `RngCore` and [`Error`] — is vendored
//! here verbatim in shape. Nothing in this crate produces randomness.

use std::fmt;

/// Error type returned by fallible `RngCore` operations.
///
/// Mirrors `rand::Error` 0.8: an opaque wrapper around a boxed error.
pub struct Error {
    inner: Box<dyn std::error::Error + Send + Sync + 'static>,
}

impl Error {
    /// Wrap an arbitrary error as a generator error.
    pub fn new<E>(err: E) -> Self
    where
        E: Into<Box<dyn std::error::Error + Send + Sync + 'static>>,
    {
        Error { inner: err.into() }
    }

    /// Borrow the underlying error.
    pub fn inner(&self) -> &(dyn std::error::Error + Send + Sync + 'static) {
        &*self.inner
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rand::Error({:?})", self.inner)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.inner, f)
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.inner.source()
    }
}

/// The core of a random number generator: uniform `u32`/`u64` words and
/// byte filling. Identical in shape to `rand_core::RngCore` 0.6.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}
