//! Power-plant output forecasting — the IoT scenario RegHD's introduction
//! motivates: a stream of sensor readings (ambient temperature, pressure,
//! humidity, exhaust vacuum) from which a resource-constrained device must
//! predict electrical output in real time.
//!
//! Trains RegHD and the classical baselines on the CCPP-style workload and
//! compares quality and (modelled) on-device cost.
//!
//! ```text
//! cargo run --example power_plant --release
//! ```

use reghd_repro::hwmodel::algos::{reghd_infer_cost, RegHdShape};
use reghd_repro::prelude::*;

fn main() {
    let seed = 7u64;
    let ds = datasets::paper::ccpp(seed);
    println!(
        "CCPP workload: {} samples x {} sensor features, output {:.0} ± {:.0} MW-scale units",
        ds.len(),
        ds.num_features(),
        ds.target_mean(),
        ds.target_variance().sqrt()
    );
    let (train, test) = datasets::split::train_test_split(&ds, 0.2, seed);
    // Keep the example snappy: 2000 training rows are plenty here.
    let train = train.select(&(0..train.len().min(2000)).collect::<Vec<_>>());

    // Standardise features on the training split.
    let std = datasets::normalize::Standardizer::fit(&train);
    let train_n = std.transform(&train);
    let test_n = std.transform(&test);
    let scaler = datasets::normalize::TargetScaler::fit(&train.targets);
    let train_y: Vec<f32> = train.targets.iter().map(|&y| scaler.transform(y)).collect();
    let test_y: Vec<f32> = test.targets.iter().map(|&y| scaler.transform(y)).collect();

    let dim = 2048;
    let mut results: Vec<(String, f32)> = Vec::new();

    // RegHD with quantised clusters — the deployable configuration.
    let config = RegHdConfig::builder()
        .dim(dim)
        .models(8)
        .cluster_mode(ClusterMode::FrameworkBinary)
        .seed(seed)
        .build();
    let encoder = NonlinearEncoder::new(ds.num_features(), dim, seed);
    let mut reghd_model = RegHdRegressor::new(config, Box::new(encoder));
    reghd_model.fit(&train_n.features, &train_y);
    let mse = datasets::metrics::mse(&reghd_model.predict(&test_n.features), &test_y);
    results.push((
        "RegHD-8 (quantised clusters)".into(),
        scaler.inverse_mse(mse),
    ));

    // Linear baseline.
    let mut linear = LinearRegressor::new(1e-4);
    linear.fit(&train_n.features, &train_y);
    let mse = datasets::metrics::mse(&linear.predict(&test_n.features), &test_y);
    results.push(("Linear regression".into(), scaler.inverse_mse(mse)));

    // Mean floor.
    let mut mean = MeanRegressor::new();
    mean.fit(&train_n.features, &train_y);
    let mse = datasets::metrics::mse(&mean.predict(&test_n.features), &test_y);
    results.push(("Mean predictor (floor)".into(), scaler.inverse_mse(mse)));

    println!("\ntest MSE (original units):");
    for (name, mse) in &results {
        println!("  {name:<30} {mse:>10.2}");
    }

    // What does one prediction cost on an embedded device?
    let shape = RegHdShape {
        dim: dim as u64,
        models: 8,
        features: ds.num_features() as u64,
        cluster_binary: true,
        query_binary: false,
        model_binary: false,
    };
    let dev = DeviceProfile::embedded_cpu();
    let est = dev.estimate(&reghd_infer_cost(&shape));
    println!(
        "\nmodelled per-prediction cost on {}: {:.1} µs, {:.2} µJ",
        dev.name,
        est.time_s * 1e6,
        est.energy_j * 1e6
    );
    println!("(see `cargo run -p reghd-bench --bin fig8` for the full efficiency study)");
}
