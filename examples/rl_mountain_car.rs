//! HD-based reinforcement learning on Mountain Car — the extension the
//! RegHD paper's conclusion calls for ("the first HD-based reinforcement
//! learning").
//!
//! The agent's per-action value functions are HD regressions over the
//! nonlinear encoder; the TD delta rule is exactly the paper's Eq. 2 with
//! the bootstrap target. Mountain Car needs a *nonlinear* value function,
//! so this also demonstrates the encoder doing real work.
//!
//! ```text
//! cargo run --example rl_mountain_car --release
//! ```

use reghd_repro::prelude::*;

fn main() {
    let mut env = MountainCar::new(250);
    let mut agent = HdQAgent::new(
        env.state_dim(),
        env.num_actions(),
        QConfig {
            dim: 2048,
            learning_rate: 0.08,
            gamma: 0.99,
            episodes_to_min_epsilon: 250,
            seed: 7,
            ..QConfig::default()
        },
    );

    println!("training HD Q-learning on Mountain Car (reward = −steps to flag, floor −250)…");
    let episodes = 450;
    let mut window = Vec::new();
    for ep in 1..=episodes {
        let reward = agent.run_episode(&mut env);
        window.push(reward);
        if ep % 50 == 0 {
            let mean: f32 = window.iter().sum::<f32>() / window.len() as f32;
            println!(
                "  episodes {:>3}-{:>3}: mean training reward {:>7.1}  (epsilon {:.2})",
                ep - 49,
                ep,
                mean,
                agent.epsilon()
            );
            window.clear();
        }
    }

    let greedy = agent.evaluate(&mut env, 20);
    println!("\ngreedy-policy mean reward over 20 episodes: {greedy:.1}");
    println!("(a random policy almost never reaches the flag: reward ≈ -250;");
    println!(" the textbook energy-pumping policy scores around -120)");
    if greedy > -250.0 + 30.0 {
        println!("=> the HD agent learned to rock the car up the hill.");
    } else {
        println!("=> training did not converge with these settings; try more episodes.");
    }
}
