//! Model zoo: every learner in the workspace on one dataset, via the shared
//! [`Regressor`] interface — including a k-fold grid search for the RegHD
//! model count, the way §4.2 tunes hyper-parameters.
//!
//! ```text
//! cargo run --example model_zoo --release
//! ```

use reghd_repro::baselines::baseline_hd::BaselineHdConfig;
use reghd_repro::baselines::forest::{ForestConfig, ForestRegressor};
use reghd_repro::baselines::gbt::{GbtConfig, GbtRegressor};
use reghd_repro::baselines::grid::{grid_search, Candidate};
use reghd_repro::baselines::knn::{KnnRegressor, KnnWeighting};
use reghd_repro::baselines::mlp::MlpConfig;
use reghd_repro::baselines::svr::SvrConfig;
use reghd_repro::baselines::tree::TreeConfig;
use reghd_repro::prelude::*;

fn main() {
    let seed = 3u64;
    let ds = datasets::paper::boston(seed);
    let (train, test) = datasets::split::train_test_split(&ds, 0.2, seed);
    let std = datasets::normalize::Standardizer::fit(&train);
    let train_n = std.transform(&train);
    let test_n = std.transform(&test);
    let scaler = datasets::normalize::TargetScaler::fit(&train.targets);
    let train_y: Vec<f32> = train.targets.iter().map(|&y| scaler.transform(y)).collect();
    let test_y: Vec<f32> = test.targets.iter().map(|&y| scaler.transform(y)).collect();
    let f = ds.num_features();
    let dim = 1024;

    // Grid-search the RegHD model count with 4-fold CV on the training set.
    let reghd_factory = move |k: usize| {
        move || -> Box<dyn Regressor> {
            let cfg = RegHdConfig::builder().dim(dim).models(k).seed(seed).build();
            Box::new(RegHdRegressor::new(
                cfg,
                Box::new(NonlinearEncoder::new(f, dim, seed)),
            ))
        }
    };
    let candidates: Vec<Candidate> = [1usize, 2, 4, 8]
        .into_iter()
        .map(|k| {
            (
                format!("RegHD k={k}"),
                Box::new(reghd_factory(k)) as Box<dyn Fn() -> Box<dyn Regressor>>,
            )
        })
        .collect();
    let grid = grid_search(&candidates, &train_n.features, &train_y, 4, seed);
    println!("grid search over RegHD model count (4-fold CV):");
    for s in &grid.scores {
        println!("  {:<12} cv-mse {:.4}", s.label, s.cv_mse);
    }
    println!("  -> selected: {}\n", grid.best().label);

    // The full zoo, evaluated on the held-out test split.
    let mut zoo: Vec<Box<dyn Regressor>> = vec![
        Box::new(MeanRegressor::new()),
        Box::new(LinearRegressor::new(1e-4)),
        Box::new(TreeRegressor::new(TreeConfig::default())),
        Box::new(ForestRegressor::new(ForestConfig {
            seed,
            ..ForestConfig::default()
        })),
        Box::new(GbtRegressor::new(GbtConfig::default())),
        Box::new(KnnRegressor::new(5, KnnWeighting::InverseDistance)),
        Box::new(SvrRegressor::new(
            f,
            SvrConfig {
                seed,
                ..SvrConfig::default()
            },
        )),
        Box::new(MlpRegressor::new(
            f,
            MlpConfig {
                seed,
                ..MlpConfig::default()
            },
        )),
        Box::new(BaselineHd::new(
            BaselineHdConfig::default(),
            Box::new(NonlinearEncoder::new(f, dim, seed)),
        )),
        candidates[grid.best_index].1(),
    ];
    println!("{:<24} {:>12} {:>8}", "model", "test MSE", "epochs");
    for model in &mut zoo {
        let report = model.fit(&train_n.features, &train_y);
        let mse = scaler.inverse_mse(datasets::metrics::mse(
            &model.predict(&test_n.features),
            &test_y,
        ));
        println!("{:<24} {:>12.2} {:>8}", model.name(), mse, report.epochs);
    }
}
