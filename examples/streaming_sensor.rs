//! Streaming / single-pass learning with concept drift — the IoT regime
//! the paper motivates: a device learns from each sensor reading exactly
//! once, in arrival order, with bounded memory, and keeps adapting when
//! the environment changes.
//!
//! Also demonstrates model persistence: the streamed model is saved with
//! `reghd::persist` and reloaded bit-exactly.
//!
//! ```text
//! cargo run --example streaming_sensor --release
//! ```

use reghd_repro::encoding::EncoderSpec;
use reghd_repro::hdc::rng::HdRng;
use reghd_repro::prelude::*;
use reghd_repro::reghd::persist;

fn main() {
    let dim = 1024;
    let spec = EncoderSpec::Nonlinear {
        input_dim: 2,
        dim,
        seed: 13,
    };
    let config = RegHdConfig::builder().dim(dim).models(4).seed(13).build();
    let mut model = OnlineRegHd::new(config.clone(), spec.build());

    // Phase 1: a calibration law y = 2·t − h (temperature, humidity).
    // Phase 2 (drift): the sensor is re-mounted; the law flips to y = −2·t + h.
    let mut rng = HdRng::seed_from(99);
    let sample = |phase: u32, rng: &mut HdRng| -> ([f32; 2], f32) {
        let t = rng.next_f32() * 2.0 - 1.0;
        let h = rng.next_f32() * 2.0 - 1.0;
        let y = if phase == 1 {
            2.0 * t - h
        } else {
            -2.0 * t + h
        };
        ([t, h], y + 0.05 * rng.next_gaussian() as f32)
    };

    println!("phase 1: streaming 1500 readings of y = 2t − h …");
    for i in 0..1500 {
        let (x, y) = sample(1, &mut rng);
        model.update(&x, y);
        if i % 500 == 499 {
            println!(
                "  after {:>4} samples: prequential MSE {:.4}",
                i + 1,
                model.prequential_mse()
            );
        }
    }
    let probe = [0.5f32, -0.25];
    println!(
        "  probe f(0.5, -0.25): truth {:+.3}, model {:+.3}",
        2.0 * probe[0] - probe[1],
        model.predict_one(&probe)
    );

    println!("\nphase 2 (drift): the law flips to y = −2t + h …");
    for i in 0..2500 {
        let (x, y) = sample(2, &mut rng);
        model.update(&x, y);
        if i % 1000 == 999 {
            println!(
                "  after {:>4} samples: prequential MSE {:.4}",
                i + 1,
                model.prequential_mse()
            );
        }
    }
    println!(
        "  probe f(0.5, -0.25): new truth {:+.3}, model {:+.3}  (adapted)",
        -2.0 * probe[0] + probe[1],
        model.predict_one(&probe)
    );

    // Persist the adapted model. OnlineRegHd shares its learned state
    // shape with the batch model, so we snapshot through a batch fit of
    // recent history in practice; here we demonstrate persist on a batch
    // model trained from the stream's last window.
    let mut window_x = Vec::new();
    let mut window_y = Vec::new();
    for _ in 0..300 {
        let (x, y) = sample(2, &mut rng);
        window_x.push(x.to_vec());
        window_y.push(y);
    }
    let mut snapshot = RegHdRegressor::new(config, spec.build());
    snapshot.fit(&window_x, &window_y);
    let path = std::env::temp_dir().join("streaming_sensor_model.rghd");
    persist::save_to_file(&snapshot, &spec, &path).expect("save model");
    let loaded = persist::load_from_file(&path).expect("load model");
    assert_eq!(loaded.predict_one(&probe), snapshot.predict_one(&probe));
    println!(
        "\nsnapshot persisted to {} ({} bytes) and reloaded bit-exactly.",
        path.display(),
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0)
    );
    std::fs::remove_file(&path).ok();
}
