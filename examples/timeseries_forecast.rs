//! Time-series forecasting with the temporal (permutation-binding) encoder:
//! the IoT sensor-stream scenario of the paper's introduction, end to end.
//!
//! A synthetic sensor signal (two seasonal components + trend + noise) is
//! windowed; each window of the last `W` readings encodes into one
//! hypervector (order preserved by cyclic permutation), and RegHD regresses
//! the next reading.
//!
//! ```text
//! cargo run --example timeseries_forecast --release
//! ```

use reghd_repro::encoding::TemporalEncoder;
use reghd_repro::hdc::rng::HdRng;
use reghd_repro::prelude::*;

/// Synthetic sensor signal: two periods, slow drift, mild noise.
fn signal(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = HdRng::seed_from(seed);
    (0..n)
        .map(|t| {
            let t = t as f32;
            // Fast seasonal component (period ≈ 16 samples) over a slower
            // one — adjacent readings differ a lot, so naive persistence
            // forecasting fails while a window-based model succeeds.
            (0.4 * t).sin()
                + 0.4 * (0.05 * t).sin()
                + 0.0005 * t
                + 0.05 * rng.next_gaussian() as f32
        })
        .collect()
}

fn main() {
    let window = 8usize;
    let series = signal(1200, 3);

    // Build (window → next value) supervised pairs; most recent reading
    // first in each window.
    let mut xs: Vec<Vec<f32>> = Vec::new();
    let mut ys: Vec<f32> = Vec::new();
    for t in window..series.len() {
        let mut w: Vec<f32> = (0..window).map(|i| series[t - 1 - i]).collect();
        // One reading per "timestep"; the temporal encoder sees `window`
        // single-feature steps.
        xs.push(std::mem::take(&mut w));
        ys.push(series[t]);
    }
    let split = xs.len() * 4 / 5;
    let (train_x, test_x) = xs.split_at(split);
    let (train_y, test_y) = ys.split_at(split);

    let dim = 2048;
    let inner = NonlinearEncoder::new(1, dim, 11);
    let encoder = TemporalEncoder::new(Box::new(inner), window);
    let config = RegHdConfig::builder().dim(dim).models(4).seed(11).build();
    let mut model = RegHdRegressor::new(config, Box::new(encoder));
    let report = model.fit(train_x, train_y);
    println!(
        "trained on {} windows in {} epochs (converged: {})",
        split, report.epochs, report.converged
    );

    let preds = model.predict(test_x);
    let mse = reghd_repro::datasets::metrics::mse(&preds, test_y);
    // Baselines: persistence (predict the last reading) and the mean.
    let persistence: Vec<f32> = test_x.iter().map(|w| w[0]).collect();
    let mse_persist = reghd_repro::datasets::metrics::mse(&persistence, test_y);
    let mean = train_y.iter().sum::<f32>() / train_y.len() as f32;
    let mse_mean = reghd_repro::datasets::metrics::mse(&vec![mean; test_y.len()], test_y);

    println!("\none-step-ahead forecast MSE on the held-out tail:");
    println!("  RegHD over temporal encoding : {mse:.5}");
    println!("  persistence (copy last value): {mse_persist:.5}");
    println!("  train-mean predictor         : {mse_mean:.5}");

    // Show a few forecasts.
    println!("\nsample forecasts:");
    for i in (0..test_y.len()).step_by(test_y.len() / 5) {
        println!(
            "  t+{i:>3}: actual {:+.3}  predicted {:+.3}",
            test_y[i], preds[i]
        );
    }
}
