//! Quickstart: train a RegHD model on a toy nonlinear task in ~20 lines.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use reghd_repro::prelude::*;

fn main() {
    // A 2-D nonlinear regression task: y = sin(3·x0) + x1².
    let xs: Vec<Vec<f32>> = (0..400)
        .map(|i| {
            let a = (i % 20) as f32 / 10.0 - 1.0;
            let b = (i / 20) as f32 / 10.0 - 1.0;
            vec![a, b]
        })
        .collect();
    let ys: Vec<f32> = xs
        .iter()
        .map(|x| (3.0 * x[0]).sin() + x[1] * x[1])
        .collect();

    // Build: a similarity-preserving encoder into D = 2048 dimensions and a
    // 4-model RegHD regressor on top.
    let dim = 2048;
    let config = RegHdConfig::builder().dim(dim).models(4).seed(42).build();
    let encoder = NonlinearEncoder::new(2, dim, 42);
    let mut model = RegHdRegressor::new(config, Box::new(encoder));

    // Train (iterative epochs until the training MSE stabilises).
    let report = model.fit(&xs, &ys);
    println!(
        "trained in {} epochs (converged: {}), final train MSE = {:.4}",
        report.epochs,
        report.converged,
        report.final_mse().expect("at least one epoch")
    );

    // Predict on a few unseen points.
    for probe in [[0.25f32, 0.5], [-0.8, 0.1], [0.0, -0.9]] {
        let truth = (3.0 * probe[0]).sin() + probe[1] * probe[1];
        let pred = model.predict_one(&probe);
        println!(
            "f({:+.2}, {:+.2}) = {truth:+.3}, RegHD predicts {pred:+.3} (err {:+.3})",
            probe[0],
            probe[1],
            pred - truth
        );
    }
}
