//! Quantisation & robustness showcase — RegHD §3 end to end.
//!
//! Trains the same regression task in all four precision configurations,
//! compares their quality and modelled hardware cost, then injects
//! hypervector bit-error faults to demonstrate the holographic-redundancy
//! robustness claim.
//!
//! ```text
//! cargo run --example quantized_edge --release
//! ```

use reghd_repro::hdc::rng::HdRng;
use reghd_repro::hwmodel::algos::{reghd_infer_cost, RegHdShape};
use reghd_repro::prelude::*;

fn main() {
    let seed = 11u64;
    let ds = datasets::paper::airfoil(seed);
    let (train, test) = datasets::split::train_test_split(&ds, 0.2, seed);
    let std = datasets::normalize::Standardizer::fit(&train);
    let train_n = std.transform(&train);
    let test_n = std.transform(&test);
    let scaler = datasets::normalize::TargetScaler::fit(&train.targets);
    let train_y: Vec<f32> = train.targets.iter().map(|&y| scaler.transform(y)).collect();
    let test_y: Vec<f32> = test.targets.iter().map(|&y| scaler.transform(y)).collect();

    let dim = 2048;
    let dev = DeviceProfile::fpga_kintex7();
    println!(
        "airfoil workload, D = {dim}, k = 8, device model: {}\n",
        dev.name
    );
    println!(
        "{:<36} {:>10} {:>12} {:>12}",
        "configuration", "test MSE", "infer time", "infer energy"
    );

    let configs: [(&str, ClusterMode, PredictionMode); 4] = [
        ("full precision", ClusterMode::Integer, PredictionMode::Full),
        (
            "quantised clusters",
            ClusterMode::FrameworkBinary,
            PredictionMode::Full,
        ),
        (
            "quantised clusters + binary query",
            ClusterMode::FrameworkBinary,
            PredictionMode::BinaryQuery,
        ),
        (
            "fully binary (query + model)",
            ClusterMode::FrameworkBinary,
            PredictionMode::BinaryBoth,
        ),
    ];
    let mut robust_model = None;
    for (name, cmode, pmode) in configs {
        let config = RegHdConfig::builder()
            .dim(dim)
            .models(8)
            .cluster_mode(cmode)
            .prediction_mode(pmode)
            .seed(seed)
            .build();
        let encoder = NonlinearEncoder::new(ds.num_features(), dim, seed);
        let mut model = RegHdRegressor::new(config, Box::new(encoder));
        model.fit(&train_n.features, &train_y);
        let mse = scaler.inverse_mse(datasets::metrics::mse(
            &model.predict(&test_n.features),
            &test_y,
        ));
        let shape = RegHdShape {
            dim: dim as u64,
            models: 8,
            features: ds.num_features() as u64,
            cluster_binary: cmode != ClusterMode::Integer,
            query_binary: pmode.query_is_binary(),
            model_binary: pmode.model_is_binary(),
        };
        let est = dev.estimate(&reghd_infer_cost(&shape));
        println!(
            "{:<36} {:>10.2} {:>10.2}µs {:>10.3}µJ",
            name,
            mse,
            est.time_s * 1e6,
            est.energy_j * 1e6
        );
        if cmode == ClusterMode::FrameworkBinary && pmode == PredictionMode::Full {
            robust_model = Some(model);
        }
    }

    // Robustness: flip signs of encoded-hypervector components at
    // increasing rates and watch the quality degrade gracefully.
    let model = robust_model.expect("quantised-cluster model trained");
    println!("\nbit-error robustness (sign flips in hypervector components):");
    let clean = datasets::metrics::mse(&model.predict(&test_n.features), &test_y);
    for rate in [0.01f64, 0.05, 0.10, 0.20] {
        let mut rng = HdRng::seed_from(99);
        let preds: Vec<f32> = test_n
            .features
            .iter()
            .map(|x| model.predict_one_with_noise(x, rate, &mut rng))
            .collect();
        let noisy = datasets::metrics::mse(&preds, &test_y);
        println!(
            "  {:>4.0}% of components faulted -> MSE grows {:.2}x",
            rate * 100.0,
            noisy / clean
        );
    }
    println!("\nthe information is spread holographically across all {dim} components,");
    println!("so no single fault is catastrophic — the §3 robustness claim.");
}
