//! Model interpretability — the paper's §1 point (ii): HD computing
//! "offers an intuitive and human-interpretable model".
//!
//! Trains RegHD on a visibly multi-regime task and uses
//! [`reghd::diagnostics`] to show what the mixture learned: which clusters
//! own which parts of the input space, how confident the gating is, and
//! how much each expert accumulated.
//!
//! ```text
//! cargo run --example interpretability --release
//! ```

use reghd_repro::hdc::rng::HdRng;
use reghd_repro::prelude::*;

fn main() {
    // Three visible regimes on the 1-D line, each with its own response.
    let mut rng = HdRng::seed_from(21);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for _ in 0..600 {
        let regime = rng.next_below(3);
        let (center, slope, offset) = match regime {
            0 => (-2.0f32, 1.5f32, 3.0f32),
            1 => (0.0, -2.0, 0.0),
            _ => (2.0, 0.5, -3.0),
        };
        let x = center + 0.3 * rng.next_gaussian() as f32;
        xs.push(vec![x]);
        ys.push(offset + slope * (x - center) + 0.05 * rng.next_gaussian() as f32);
    }

    let dim = 2048;
    let config = RegHdConfig::builder().dim(dim).models(6).seed(21).build();
    let mut model = RegHdRegressor::new(config, Box::new(NonlinearEncoder::new(1, dim, 21)));
    model.fit(&xs, &ys);

    println!("trained RegHD-6 on a 3-regime task; diagnostics over the training set:\n");
    let diag = model.diagnostics(&xs);
    println!("{diag}\n");

    // Which cluster answers for which part of the line?
    println!("cluster routing across the input range:");
    for probe in [-2.5f32, -2.0, -1.5, -0.5, 0.0, 0.5, 1.5, 2.0, 2.5] {
        let d = model.diagnostics(&[vec![probe]]);
        let cluster = d
            .cluster_histogram
            .iter()
            .position(|&c| c == 1)
            .expect("single probe routes somewhere");
        println!(
            "  x = {probe:+.1} -> cluster {cluster}, prediction {:+.2}",
            model.predict_one(&[probe])
        );
    }
    println!("\nregimes map to distinct clusters — the run-time clustering of §2.4,");
    println!("inspectable rather than buried in a weight matrix.");
}
